/**
 * @file
 * Tests for the Sec. 6 comparator mechanisms (OS page retirement,
 * DDDC-style device sparing) and the alternative memory-organization
 * presets.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "repair/device_sparing.h"
#include "repair/page_retirement.h"
#include "repair/relaxfault_map.h"

namespace relaxfault {
namespace {

FaultRecord
makeFault(FaultRegion region, unsigned dimm = 0, unsigned device = 0)
{
    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    fault.parts.push_back({dimm, device, std::move(region)});
    return fault;
}

FaultRegion
bitRegion(unsigned bank, uint32_t row, uint16_t col)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::of({col});
    cluster.bitMask = 1;
    return FaultRegion({cluster});
}

FaultRegion
rowRegion(unsigned bank, uint32_t row)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

FaultRegion
massiveBank(unsigned bank)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::allRows();
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

TEST(PageRetirementTest, BitFaultRetiresOnePage)
{
    const DramAddressMap map(DramGeometry{}, true);
    PageRetirement retirement(map, 4096, 64 << 20);
    EXPECT_TRUE(retirement.tryRepair(makeFault(bitRegion(0, 10, 20))));
    EXPECT_EQ(retirement.retiredPages(), 1u);
    EXPECT_EQ(retirement.retiredBytes(), 4096u);
}

TEST(PageRetirementTest, DeviceRowCosts16Frames)
{
    // One device row = 256 physical blocks; column bits sit low in the
    // PA, so they tile exactly 16 4KiB frames = 64KiB of DRAM — 64x
    // what RelaxFault pays in LLC (1KiB) for the same fault.
    const DramAddressMap map(DramGeometry{}, true);
    PageRetirement retirement(map, 4096, 64 << 20);
    EXPECT_TRUE(retirement.tryRepair(makeFault(rowRegion(2, 100))));
    EXPECT_EQ(retirement.retiredPages(), 16u);
    EXPECT_EQ(retirement.retiredBytes(), 64u * 1024);
}

TEST(PageRetirementTest, ColumnFaultCostsOneFramePerBadWord)
{
    // The Sec. 6 point in its sharpest form: a column fault's cells sit
    // in different rows, i.e., different frames — 4KiB retired per 4
    // faulty bytes.
    const DramAddressMap map(DramGeometry{}, true);
    PageRetirement retirement(map, 4096, 64 << 20);
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < 24; ++r)
        rows.push_back(1000 + r);
    RegionCluster cluster;
    cluster.bankMask = 1u << 1;
    cluster.rows = RowSet::of(std::move(rows));
    cluster.cols = ColSet::of({33});
    cluster.bitMask = 0xf;  // 4 bits bad per row.
    EXPECT_TRUE(retirement.tryRepair(makeFault(FaultRegion({cluster}))));
    EXPECT_EQ(retirement.retiredPages(), 24u);
}

TEST(PageRetirementTest, BudgetEnforced)
{
    const DramAddressMap map(DramGeometry{}, true);
    PageRetirement retirement(map, 4096, 8 * 4096);  // 8 frames.
    EXPECT_FALSE(retirement.tryRepair(makeFault(rowRegion(2, 100))));
    EXPECT_EQ(retirement.retiredPages(), 0u);
    EXPECT_TRUE(retirement.tryRepair(makeFault(bitRegion(0, 1, 1))));
}

TEST(PageRetirementTest, MassiveRejected)
{
    const DramAddressMap map(DramGeometry{}, true);
    PageRetirement retirement(map, 4096, 1ull << 30);
    EXPECT_FALSE(retirement.tryRepair(makeFault(massiveBank(0))));
}

TEST(PageRetirementTest, SharedFrameNotDoubleCounted)
{
    const DramAddressMap map(DramGeometry{}, true);
    PageRetirement retirement(map, 4096, 64 << 20);
    EXPECT_TRUE(retirement.tryRepair(makeFault(bitRegion(0, 10, 20))));
    const uint64_t first = retirement.retiredPages();
    // A second fault in the same physical frame costs nothing new.
    LineCoord coord;
    coord.bank = 0;
    coord.row = 10;
    coord.colBlock = 20;
    const uint64_t pa = map.encode(coord);
    EXPECT_TRUE(retirement.pageRetired(pa));
    EXPECT_TRUE(retirement.tryRepair(makeFault(bitRegion(0, 10, 20))));
    EXPECT_EQ(retirement.retiredPages(), first);
}

TEST(DeviceSparingTest, MassiveFaultAbsorbed)
{
    DeviceSparing sparing(DramGeometry{});
    EXPECT_TRUE(sparing.tryRepair(makeFault(massiveBank(3), 2, 9)));
    EXPECT_TRUE(sparing.deviceSpared(2, 9));
    EXPECT_EQ(sparing.degradedRanks(), 1u);
}

TEST(DeviceSparingTest, OneSparePerRank)
{
    DeviceSparing sparing(DramGeometry{}, 1);
    EXPECT_TRUE(sparing.tryRepair(makeFault(bitRegion(0, 1, 1), 0, 4)));
    // Second faulty device in the same rank: no spare left.
    EXPECT_FALSE(sparing.tryRepair(makeFault(bitRegion(0, 2, 2), 0, 5)));
    // Same device again: already steered, free.
    EXPECT_TRUE(sparing.tryRepair(makeFault(rowRegion(1, 7), 0, 4)));
    // Other ranks unaffected.
    EXPECT_TRUE(sparing.tryRepair(makeFault(bitRegion(0, 1, 1), 3, 4)));
    EXPECT_EQ(sparing.sparedDevices(), 2u);  // (0,4) and (3,4).
    EXPECT_EQ(sparing.degradedRanks(), 2u);
}

TEST(DeviceSparingTest, ResetClears)
{
    DeviceSparing sparing(DramGeometry{});
    EXPECT_TRUE(sparing.tryRepair(makeFault(bitRegion(0, 1, 1))));
    sparing.reset();
    EXPECT_EQ(sparing.sparedDevices(), 0u);
    EXPECT_FALSE(sparing.deviceSpared(0, 0));
}

class OrganizationPreset
    : public ::testing::TestWithParam<DramGeometry>
{
};

TEST_P(OrganizationPreset, GeometryConsistent)
{
    const DramGeometry geometry = GetParam();
    EXPECT_TRUE(isPowerOfTwo(geometry.nodeBytes()));
    EXPECT_EQ(geometry.bytesPerDevicePerLine(), 4u);
    // The address map must tile the PA space exactly.
    const DramAddressMap map(geometry, true);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t pa =
            rng.uniformInt(geometry.nodeBytes() / 64) * 64;
        EXPECT_EQ(map.encode(map.decode(pa)), pa);
    }
}

TEST_P(OrganizationPreset, RelaxFaultMapInjective)
{
    const DramGeometry geometry = GetParam();
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const RelaxFaultMap map(geometry, llc, true);
    Rng rng(6);
    for (int i = 0; i < 5000; ++i) {
        RemapUnit unit;
        unit.dimm = static_cast<unsigned>(
            rng.uniformInt(geometry.dimmsPerNode()));
        unit.device = static_cast<unsigned>(
            rng.uniformInt(geometry.devicesPerRank()));
        unit.bank = static_cast<unsigned>(
            rng.uniformInt(geometry.banksPerDevice));
        unit.row = static_cast<uint32_t>(
            rng.uniformInt(geometry.rowsPerBank));
        unit.colGroup = static_cast<uint16_t>(rng.uniformInt(
            geometry.colBlocksPerRow /
            (geometry.lineBytes / geometry.bytesPerDevicePerLine())));
        const RemapLocation loc = map.locate(unit);
        ASSERT_LT(loc.set, llc.sets());
        EXPECT_EQ(map.invert(loc), unit);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, OrganizationPreset,
    ::testing::Values(DramGeometry::ddr3Dimm(), DramGeometry::ddr4Dimm(),
                      DramGeometry::lpddr4(), DramGeometry::hbmStack()));

TEST(HashOnlyMode, InjectiveAndColumnCollides)
{
    // The ablation mode must stay injective but lose the deterministic
    // spreading of column faults.
    const DramGeometry geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const RelaxFaultMap map(geometry, llc,
                            RelaxFaultMap::IndexMode::HashOnly);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        RemapUnit unit;
        unit.dimm = static_cast<unsigned>(rng.uniformInt(8));
        unit.device = static_cast<unsigned>(rng.uniformInt(18));
        unit.bank = static_cast<unsigned>(rng.uniformInt(8));
        unit.row = static_cast<uint32_t>(rng.uniformInt(65536));
        unit.colGroup = static_cast<uint16_t>(rng.uniformInt(16));
        EXPECT_EQ(map.invert(map.locate(unit)), unit);
    }

    // 512 consecutive rows: structured mode gives 512 distinct sets;
    // hash-only mode collides with near-certainty (birthday).
    std::vector<uint64_t> sets;
    RemapUnit unit{0, 3, 2, 0, 5};
    for (uint32_t r = 0; r < 512; ++r) {
        unit.row = 512 * 9 + r;
        sets.push_back(map.locate(unit).set);
    }
    std::sort(sets.begin(), sets.end());
    const auto distinct = std::unique(sets.begin(), sets.end()) -
                          sets.begin();
    EXPECT_LT(distinct, 512);
}

} // namespace
} // namespace relaxfault
