/**
 * @file
 * Tests for the cache substrate: geometry, set indexing (canonical and
 * XOR-hashed), LRU behaviour, way locking, and writeback accounting.
 */

#include <gtest/gtest.h>

#include "cache/cache_geometry.h"
#include "cache/cache_model.h"
#include "common/rng.h"

namespace relaxfault {
namespace {

TEST(CacheGeometry, PaperLlc)
{
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    EXPECT_EQ(llc.lines(), 131072u);
    EXPECT_EQ(llc.sets(), 8192u);
    EXPECT_EQ(llc.setBits(), 13u);
    EXPECT_EQ(llc.offsetBits(), 6u);
}

TEST(SetIndexer, CanonicalUsesLowLineBits)
{
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const SetIndexer indexer(llc, false);
    EXPECT_EQ(indexer.setIndex(0), 0u);
    EXPECT_EQ(indexer.setIndex(64), 1u);
    EXPECT_EQ(indexer.setIndex(8192ull * 64), 0u);  // Wraps at set count.
    EXPECT_EQ(indexer.tag(8192ull * 64), 1u);
}

TEST(SetIndexer, HashSpreadsTagAliases)
{
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const SetIndexer plain(llc, false);
    const SetIndexer hashed(llc, true);
    // Addresses differing only in tag bits: same set canonically,
    // different sets (mostly) under the hash.
    unsigned plain_distinct = 0;
    unsigned hashed_distinct = 0;
    std::vector<uint64_t> plain_sets;
    std::vector<uint64_t> hashed_sets;
    for (uint64_t t = 0; t < 64; ++t) {
        const uint64_t pa = t * (llc.sets() * 64);
        plain_sets.push_back(plain.setIndex(pa));
        hashed_sets.push_back(hashed.setIndex(pa));
    }
    std::sort(plain_sets.begin(), plain_sets.end());
    std::sort(hashed_sets.begin(), hashed_sets.end());
    plain_distinct = static_cast<unsigned>(
        std::unique(plain_sets.begin(), plain_sets.end()) -
        plain_sets.begin());
    hashed_distinct = static_cast<unsigned>(
        std::unique(hashed_sets.begin(), hashed_sets.end()) -
        hashed_sets.begin());
    EXPECT_EQ(plain_distinct, 1u);
    EXPECT_EQ(hashed_distinct, 64u);
}

TEST(SetIndexer, IndexAlwaysInRange)
{
    const CacheGeometry llc{1 * 1024 * 1024, 8, 64};
    const SetIndexer hashed(llc, true);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(hashed.setIndex(rng.next() & ((1ull << 40) - 1)),
                  llc.sets());
}

class CacheModelTest : public ::testing::Test
{
  protected:
    CacheGeometry small_{8 * 1024, 4, 64};  // 32 sets x 4 ways.
    CacheModel cache_{small_, false};
};

TEST_F(CacheModelTest, MissThenHit)
{
    EXPECT_FALSE(cache_.access(0x1000, false).hit);
    EXPECT_TRUE(cache_.access(0x1000, false).hit);
    EXPECT_EQ(cache_.hits(), 1u);
    EXPECT_EQ(cache_.misses(), 1u);
}

TEST_F(CacheModelTest, LruEvictsOldest)
{
    // Fill one set (stride = sets * lineBytes = 2048).
    const uint64_t stride = 32 * 64;
    for (uint64_t i = 0; i < 4; ++i)
        cache_.access(i * stride, false);
    // Touch line 0 so line 1 becomes LRU.
    cache_.access(0, false);
    // Insert a 5th line; line 1 must be the victim.
    cache_.access(4 * stride, false);
    EXPECT_TRUE(cache_.contains(0));
    EXPECT_FALSE(cache_.contains(1 * stride));
    EXPECT_TRUE(cache_.contains(2 * stride));
    EXPECT_TRUE(cache_.contains(4 * stride));
}

TEST_F(CacheModelTest, DirtyEvictionReportsWriteback)
{
    const uint64_t stride = 32 * 64;
    cache_.access(0, true);  // Dirty.
    for (uint64_t i = 1; i <= 4; ++i) {
        const CacheAccessResult result = cache_.access(i * stride, false);
        if (i < 4) {
            EXPECT_FALSE(result.evictedDirty);
        } else {
            EXPECT_TRUE(result.evictedDirty);
            EXPECT_EQ(result.evictedPa, 0u);
        }
    }
    EXPECT_EQ(cache_.writebacks(), 1u);
}

TEST_F(CacheModelTest, WriteHitMarksDirty)
{
    const uint64_t stride = 32 * 64;
    cache_.access(0, false);
    cache_.access(0, true);  // Now dirty via hit.
    for (uint64_t i = 1; i <= 4; ++i)
        cache_.access(i * stride, false);
    EXPECT_EQ(cache_.writebacks(), 1u);
}

TEST_F(CacheModelTest, InvalidateRemovesLine)
{
    cache_.access(0x40, true);
    EXPECT_TRUE(cache_.contains(0x40));
    EXPECT_TRUE(cache_.invalidate(0x40));   // Was dirty.
    EXPECT_FALSE(cache_.contains(0x40));
    EXPECT_FALSE(cache_.invalidate(0x40));  // Already gone.
}

TEST_F(CacheModelTest, LockedWaysShrinkCapacity)
{
    cache_.lockWaysPerSet(2);
    EXPECT_EQ(cache_.availableWays(0), 2u);
    const uint64_t stride = 32 * 64;
    for (uint64_t i = 0; i < 3; ++i)
        cache_.access(i * stride, false);
    // Only 2 ways usable: line 0 must have been evicted.
    EXPECT_FALSE(cache_.contains(0));
    EXPECT_TRUE(cache_.contains(1 * stride));
    EXPECT_TRUE(cache_.contains(2 * stride));
}

TEST_F(CacheModelTest, FullyLockedSetBypasses)
{
    cache_.lockWaysPerSet(4);
    const CacheAccessResult result = cache_.access(0, false);
    EXPECT_FALSE(result.hit);
    EXPECT_FALSE(cache_.contains(0));
}

TEST_F(CacheModelTest, LockRandomLinesRespectsBudget)
{
    Rng rng(7);
    cache_.lockRandomLines(64, rng);
    uint64_t locked = 0;
    for (uint64_t set = 0; set < small_.sets(); ++set)
        locked += small_.ways - cache_.availableWays(set);
    // A few draws may land in full sets and be dropped; most stick.
    EXPECT_GE(locked, 56u);
    EXPECT_LE(locked, 64u);
}

TEST_F(CacheModelTest, ResetClearsEverything)
{
    cache_.access(0, true);
    cache_.lockWaysPerSet(1);
    cache_.reset();
    EXPECT_EQ(cache_.hits(), 0u);
    EXPECT_EQ(cache_.misses(), 0u);
    EXPECT_EQ(cache_.availableWays(0), 4u);
    EXPECT_FALSE(cache_.contains(0));
}

TEST(CacheModelProperty, WorkingSetWithinCapacityAlwaysHits)
{
    const CacheGeometry geometry{64 * 1024, 8, 64};
    CacheModel cache(geometry, true);
    // Touch a working set half the cache, twice; second pass must be
    // all hits regardless of hashing.
    const uint64_t lines = geometry.lines() / 2;
    for (uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    const uint64_t misses_before = cache.misses();
    for (uint64_t i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    EXPECT_EQ(cache.misses(), misses_before);
}

class LockSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LockSweep, MissRateMonotonicInLockedWays)
{
    // With a working set just over the available capacity, locking more
    // ways must not reduce misses.
    const CacheGeometry geometry{64 * 1024, 8, 64};
    const unsigned locked = GetParam();
    CacheModel cache(geometry, false);
    cache.lockWaysPerSet(locked);
    Rng rng(99);
    const uint64_t ws_lines = geometry.lines();  // 2x usable at 4 ways.
    for (int i = 0; i < 200000; ++i)
        cache.access(rng.uniformInt(ws_lines) * 64, false);
    const double miss_rate =
        static_cast<double>(cache.misses()) /
        static_cast<double>(cache.misses() + cache.hits());
    static double last_rate = 0.0;
    if (locked == 0)
        last_rate = 0.0;
    EXPECT_GE(miss_rate + 1e-9, last_rate);
    last_rate = miss_rate;
}

INSTANTIATE_TEST_SUITE_P(Locked, LockSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 6u));

} // namespace
} // namespace relaxfault
