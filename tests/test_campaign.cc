/**
 * @file
 * Crash-recovery tests for the sharded campaign runner.
 *
 * The load-bearing invariant: a campaign's final `LifetimeSummary` and
 * merged telemetry counters are bit-identical to an uninterrupted
 * `runTrials` call at ANY shard count and ANY thread count — including
 * when the campaign is killed with SIGKILL mid-run (a genuine child
 * process killed via the `killAfterCommits` hook) and resumed from its
 * checkpoint, and when the checkpoint's tail was torn by a partial
 * write. Every comparison is exact double equality — no tolerances.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "common/clock.h"
#include "common/fs.h"
#include "common/signal_guard.h"
#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"
#include "telemetry/metrics.h"

namespace relaxfault {
namespace {

LifetimeConfig
testConfig()
{
    // Small but active: 10x FIT on 128 nodes keeps every metric nonzero
    // while a full campaign run stays well under a second.
    LifetimeConfig config;
    config.nodesPerSystem = 128;
    config.faultModel.fitScale = 10.0;
    return config;
}

LifetimeSimulator::MechanismFactory
relaxFactory(const LifetimeConfig &config)
{
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    return [geometry, llc] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{4, 32768}, true);
    };
}

void
expectIdentical(const RunningStat &a, const RunningStat &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.ci95(), b.ci95());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectIdentical(const LifetimeSummary &a, const LifetimeSummary &b)
{
    expectIdentical(a.faultyNodes, b.faultyNodes);
    expectIdentical(a.multiDeviceFaultDimms, b.multiDeviceFaultDimms);
    expectIdentical(a.dues, b.dues);
    expectIdentical(a.sdcs, b.sdcs);
    expectIdentical(a.replacements, b.replacements);
    expectIdentical(a.repairedFaults, b.repairedFaults);
    expectIdentical(a.permanentFaults, b.permanentFaults);
    expectIdentical(a.fullyRepairedNodes, b.fullyRepairedNodes);
    expectIdentical(a.budgetExhausted, b.budgetExhausted);
    expectIdentical(a.degradedToRetirement, b.degradedToRetirement);
    expectIdentical(a.degradedDues, b.degradedDues);
    expectIdentical(a.failStops, b.failStops);
}

/**
 * Merged telemetry must match exactly, except the `sim.trial_us`
 * wall-clock histogram, which is the one intentionally nondeterministic
 * metric of the lifetime path.
 */
void
expectIdenticalTelemetry(const MetricsSnapshot &a,
                         const MetricsSnapshot &b)
{
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].first, b.counters[i].first);
        EXPECT_EQ(a.counters[i].second, b.counters[i].second)
            << "counter " << a.counters[i].first;
    }
    ASSERT_EQ(a.gauges.size(), b.gauges.size());
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (size_t i = 0; i < a.histograms.size(); ++i) {
        EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
        if (a.histograms[i].first == "sim.trial_us")
            continue;
        const Log2HistogramSnapshot &ha = a.histograms[i].second;
        const Log2HistogramSnapshot &hb = b.histograms[i].second;
        EXPECT_EQ(ha.count, hb.count) << a.histograms[i].first;
        EXPECT_EQ(ha.sum, hb.sum) << a.histograms[i].first;
        for (size_t bkt = 0; bkt < ha.buckets.size(); ++bkt)
            EXPECT_EQ(ha.buckets[bkt], hb.buckets[bkt])
                << a.histograms[i].first << " bucket " << bkt;
    }
}

TrialRunOptions
withThreads(unsigned threads, MetricRegistry *metrics = nullptr)
{
    TrialRunOptions options;
    options.parallel.threads = threads;
    options.metrics = metrics;
    return options;
}

CampaignFingerprint
testFingerprint(uint64_t seed, uint64_t trials, unsigned shards)
{
    CampaignFingerprint fingerprint;
    fingerprint.campaign = "test_campaign";
    fingerprint.seed = seed;
    fingerprint.trials = trials;
    fingerprint.shards = shards;
    fingerprint.config = "nodes=128";
    return fingerprint;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "relaxfault_" + name + "_" +
           std::to_string(::getpid()) + ".ckpt";
}

// ---------------------------------------------------------------------
// Checkpoint serialization.

ShardRecord
sampleRecord()
{
    ShardRecord record;
    record.unit = "1x-fit/RelaxFault-4way";
    record.shard = 3;
    record.firstTrial = 12;
    record.attempt = 2;
    record.threads = 8;
    record.durationMs = 1234;
    record.timestampMs = 1700000000000ull;
    record.gitRev = "abc1234";
    for (int t = 0; t < 3; ++t) {
        LifetimeMetrics m;
        m.faultyNodes = 3.0 + t;
        m.dues = 0.125 * t;            // Exact in binary.
        m.sdcs = 1e-7 * (t + 1);       // Not exact in decimal.
        m.repairedFaults = 7.0;
        record.trials.push_back(m);
    }
    record.metrics.counters.emplace_back("sim.dues", 41u);
    // A counter above 2^53 must survive the round trip exactly (a
    // double-typed JSON number would silently round it).
    record.metrics.counters.emplace_back("sim.huge",
                                         (uint64_t{1} << 60) + 3);
    Log2HistogramSnapshot histogram;
    histogram.buckets[0] = 2;
    histogram.buckets[17] = 5;
    histogram.count = 7;
    histogram.sum = 1234567;
    record.metrics.histograms.emplace_back("repair.ways", histogram);
    return record;
}

TEST(Checkpoint, ShardLineRoundTripsExactly)
{
    const ShardRecord record = sampleRecord();
    const std::string line = CheckpointLog::shardLine(record);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    ShardRecord parsed;
    ASSERT_TRUE(CheckpointLog::parseShardLine(line, parsed));
    EXPECT_EQ(parsed.unit, record.unit);
    EXPECT_EQ(parsed.shard, record.shard);
    EXPECT_EQ(parsed.firstTrial, record.firstTrial);
    EXPECT_EQ(parsed.attempt, record.attempt);
    EXPECT_EQ(parsed.threads, record.threads);
    EXPECT_EQ(parsed.durationMs, record.durationMs);
    EXPECT_EQ(parsed.timestampMs, record.timestampMs);
    EXPECT_EQ(parsed.gitRev, record.gitRev);
    ASSERT_EQ(parsed.trials.size(), record.trials.size());
    for (size_t t = 0; t < record.trials.size(); ++t) {
        // Bit-exact doubles — %.17g and strtod round-trip IEEE-754.
        EXPECT_EQ(parsed.trials[t].faultyNodes,
                  record.trials[t].faultyNodes);
        EXPECT_EQ(parsed.trials[t].dues, record.trials[t].dues);
        EXPECT_EQ(parsed.trials[t].sdcs, record.trials[t].sdcs);
        EXPECT_EQ(parsed.trials[t].repairedFaults,
                  record.trials[t].repairedFaults);
    }
    expectIdenticalTelemetry(parsed.metrics, record.metrics);
}

TEST(Checkpoint, EveryStrictPrefixOfAShardLineIsTorn)
{
    // A torn write leaves a prefix of the line on disk. No prefix may
    // parse as a valid record — otherwise resume would fold in a
    // partial shard.
    const std::string line = CheckpointLog::shardLine(sampleRecord());
    ShardRecord parsed;
    for (size_t len = 0; len < line.size(); ++len)
        EXPECT_FALSE(
            CheckpointLog::parseShardLine(line.substr(0, len), parsed))
            << "prefix length " << len;
    EXPECT_TRUE(CheckpointLog::parseShardLine(line, parsed));
}

TEST(Checkpoint, WrongSchemaOrKindRejected)
{
    ShardRecord parsed;
    EXPECT_FALSE(CheckpointLog::parseShardLine("{}", parsed));
    EXPECT_FALSE(CheckpointLog::parseShardLine("not json at all", parsed));
    EXPECT_FALSE(CheckpointLog::parseShardLine(
        R"({"schema":"other.v9","kind":"shard","unit":"u"})", parsed));
    EXPECT_FALSE(CheckpointLog::parseShardLine(
        R"({"schema":"relaxfault.ckpt.v2","kind":"campaign"})", parsed));
    EXPECT_FALSE(CheckpointLog::parseShardLine(
        R"({"schema":"relaxfault.ckpt.v1","kind":"shard","unit":"u"})",
        parsed));
}

// ---------------------------------------------------------------------
// Shard/thread invariance (no persistence).

TEST(Campaign, BitIdenticalAtAnyShardAndThreadCount)
{
    SignalGuard::reset();
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 12;
    constexpr uint64_t kSeed = 1206;

    MetricRegistry straight_metrics;
    const LifetimeSummary straight = simulator.runTrials(
        kTrials, factory, kSeed, withThreads(1, &straight_metrics));
    const MetricsSnapshot straight_snap = straight_metrics.snapshot();

    for (const unsigned shards : {1u, 2u, 3u, 5u, 12u}) {
        for (const unsigned threads : {1u, 4u}) {
            CampaignOptions options;
            options.shards = shards;
            CampaignRunner runner(
                testFingerprint(kSeed, kTrials, shards), options);
            MetricRegistry metrics;
            const CampaignResult result = runner.runUnit(
                "matrix", simulator, factory, kTrials, kSeed,
                withThreads(threads, &metrics));
            ASSERT_FALSE(result.interrupted);
            EXPECT_EQ(result.shardsRun, shards);
            expectIdentical(straight, result.summary);
            expectIdenticalTelemetry(straight_snap, metrics.snapshot());
        }
    }
}

TEST(Campaign, ShardBoundsPartitionTrials)
{
    for (const uint64_t trials : {1u, 7u, 12u, 100u}) {
        for (const unsigned shards : {1u, 2u, 3u, 7u, 12u}) {
            uint64_t covered = 0;
            for (unsigned k = 0; k < shards; ++k) {
                const uint64_t first =
                    CampaignRunner::shardFirstTrial(trials, shards, k);
                const uint64_t end = CampaignRunner::shardFirstTrial(
                    trials, shards, k + 1);
                EXPECT_LE(first, end);
                covered += end - first;
            }
            EXPECT_EQ(covered, trials);
            EXPECT_EQ(
                CampaignRunner::shardFirstTrial(trials, shards, shards),
                trials);
        }
    }
}

// ---------------------------------------------------------------------
// Kill/resume. The child genuinely dies by SIGKILL after a known
// number of durable commits; the parent resumes from its checkpoint.

void
runCampaignChild(const std::string &path, unsigned shards,
                 unsigned threads, unsigned kill_after_commits,
                 bool resume)
{
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);
    CampaignOptions options;
    options.checkpointPath = path;
    options.resume = resume;
    options.shards = shards;
    options.killAfterCommits = kill_after_commits;
    CampaignRunner runner(testFingerprint(99, 10, shards), options);
    MetricRegistry metrics;
    runner.runUnit("matrix", simulator, factory, 10, 99,
                   withThreads(threads, &metrics));
}

class KillResume
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(KillResume, ResumedRunIsBitIdenticalToUninterrupted)
{
    const auto [shards, threads] = GetParam();
    SignalGuard::reset();
    const std::string path = tempPath(
        "kill_s" + std::to_string(shards) + "_t" +
        std::to_string(threads));
    std::remove(path.c_str());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: run until killAfterCommits commits, then die by
        // raise(SIGKILL) inside the runner. _exit guards the unexpected
        // survival case (it must not run the parent's test teardown).
        runCampaignChild(path, shards, threads, /*kill_after=*/2,
                         /*resume=*/false);
        _exit(42);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child should die by signal";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // The checkpoint holds exactly the shards committed before death.
    {
        CampaignOptions probe;
        probe.checkpointPath = path;
        probe.resume = true;
        CampaignRunner inspector(testFingerprint(99, 10, shards), probe);
        EXPECT_EQ(inspector.log().committedShards(), 2u);
        EXPECT_EQ(inspector.log().tornLines(), 0u);
    }

    // Resume in-process and compare against the uninterrupted run.
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);

    CampaignOptions options;
    options.checkpointPath = path;
    options.resume = true;
    options.shards = shards;
    CampaignRunner runner(testFingerprint(99, 10, shards), options);
    MetricRegistry metrics;
    const CampaignResult resumed = runner.runUnit(
        "matrix", simulator, factory, 10, 99,
        withThreads(threads, &metrics));
    ASSERT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.shardsResumed, 2u);
    EXPECT_EQ(resumed.shardsRun, shards - 2);

    MetricRegistry straight_metrics;
    const LifetimeSummary straight = simulator.runTrials(
        10, factory, 99, withThreads(threads, &straight_metrics));
    expectIdentical(straight, resumed.summary);
    expectIdenticalTelemetry(straight_metrics.snapshot(),
                             metrics.snapshot());
    std::remove(path.c_str());
}

// >= 2 shard counts x >= 2 thread counts, per the acceptance criteria.
INSTANTIATE_TEST_SUITE_P(
    ShardsByThreads, KillResume,
    ::testing::Values(std::pair<unsigned, unsigned>{4, 1},
                      std::pair<unsigned, unsigned>{4, 4},
                      std::pair<unsigned, unsigned>{5, 1},
                      std::pair<unsigned, unsigned>{5, 4}));

TEST(Campaign, TornCheckpointTailIsDroppedAndReRun)
{
    SignalGuard::reset();
    const std::string path = tempPath("torn");
    std::remove(path.c_str());
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    constexpr unsigned kTrials = 9;
    constexpr unsigned kShards = 3;
    constexpr uint64_t kSeed = 7;

    {
        CampaignOptions options;
        options.checkpointPath = path;
        options.shards = kShards;
        CampaignRunner runner(testFingerprint(kSeed, kTrials, kShards),
                              options);
        const CampaignResult result =
            runner.runUnit("matrix", simulator, {}, kTrials, kSeed,
                           withThreads(2));
        ASSERT_FALSE(result.interrupted);
    }

    // Tear the file mid-way through the last line, as a crash on a
    // filesystem without atomic rename would.
    std::string content;
    ASSERT_TRUE(readFile(path, content));
    ASSERT_GT(content.size(), 40u);
    content.resize(content.size() - 37);
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << content;
    }

    CampaignOptions options;
    options.checkpointPath = path;
    options.resume = true;
    options.shards = kShards;
    CampaignRunner runner(testFingerprint(kSeed, kTrials, kShards),
                          options);
    EXPECT_EQ(runner.log().tornLines(), 1u);
    EXPECT_EQ(runner.log().committedShards(), kShards - 1);
    const CampaignResult resumed = runner.runUnit(
        "matrix", simulator, {}, kTrials, kSeed, withThreads(2));
    ASSERT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.shardsRun, 1u);

    const LifetimeSummary straight =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(2));
    expectIdentical(straight, resumed.summary);
    std::remove(path.c_str());
}

TEST(Campaign, StopRequestFlushesInFlightShardThenStops)
{
    SignalGuard::reset();
    const std::string path = tempPath("sigint");
    std::remove(path.c_str());
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    constexpr unsigned kTrials = 8;
    constexpr unsigned kShards = 4;
    constexpr uint64_t kSeed = 5;

    {
        CampaignOptions options;
        options.checkpointPath = path;
        options.shards = kShards;
        // Stop lands while shard 1 is "in flight": the shard must
        // still complete and commit (the flush) before the runner
        // stops.
        options.onShardStart = [](const std::string &, unsigned shard,
                                  unsigned) {
            if (shard == 1)
                SignalGuard::requestStop();
        };
        CampaignRunner runner(testFingerprint(kSeed, kTrials, kShards),
                              options);
        const CampaignResult result = runner.runUnit(
            "matrix", simulator, {}, kTrials, kSeed, withThreads(1));
        EXPECT_TRUE(result.interrupted);
        EXPECT_EQ(result.shardsRun, 2u);  // Shards 0 and 1 committed.
        EXPECT_EQ(runner.log().committedShards(), 2u);
    }

    SignalGuard::reset();
    CampaignOptions options;
    options.checkpointPath = path;
    options.resume = true;
    options.shards = kShards;
    CampaignRunner runner(testFingerprint(kSeed, kTrials, kShards),
                          options);
    const CampaignResult resumed = runner.runUnit(
        "matrix", simulator, {}, kTrials, kSeed, withThreads(1));
    ASSERT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.shardsResumed, 2u);

    const LifetimeSummary straight =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(1));
    expectIdentical(straight, resumed.summary);
    std::remove(path.c_str());
}

TEST(Campaign, FailedShardIsRetriedAndForensicallyLogged)
{
    SignalGuard::reset();
    const std::string path = tempPath("retry");
    std::remove(path.c_str());
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    constexpr unsigned kTrials = 6;
    constexpr unsigned kShards = 3;
    constexpr uint64_t kSeed = 11;

    unsigned failures_injected = 0;
    FakeClock clock;
    CampaignOptions options;
    options.checkpointPath = path;
    options.shards = kShards;
    options.maxAttempts = 3;
    options.retryBackoffMs = 50;
    options.clock = &clock;  // Virtual backoff: no real sleeps.
    options.onShardStart = [&failures_injected](const std::string &,
                                                unsigned shard,
                                                unsigned attempt) {
        if (shard == 1 && attempt <= 2) {
            ++failures_injected;
            throw std::runtime_error("injected shard failure");
        }
    };
    CampaignRunner runner(testFingerprint(kSeed, kTrials, kShards),
                          options);
    const CampaignResult result = runner.runUnit(
        "matrix", simulator, {}, kTrials, kSeed, withThreads(1));
    ASSERT_FALSE(result.interrupted);
    EXPECT_EQ(failures_injected, 2u);
    EXPECT_EQ(result.shardsRun, kShards);
    const ShardRecord *retried = runner.log().find("matrix", 1);
    ASSERT_NE(retried, nullptr);
    EXPECT_EQ(retried->attempt, 3u);

    // Exponential backoff ran on the injected clock: 50ms then 100ms.
    ASSERT_EQ(clock.sleeps().size(), 2u);
    EXPECT_EQ(clock.sleeps()[0], std::chrono::milliseconds(50));
    EXPECT_EQ(clock.sleeps()[1], std::chrono::milliseconds(100));

    // The failure left a forensic shard_failed line in the file.
    std::string content;
    ASSERT_TRUE(readFile(path, content));
    EXPECT_NE(content.find("\"kind\":\"shard_failed\""),
              std::string::npos);
    EXPECT_NE(content.find("injected shard failure"), std::string::npos);

    const LifetimeSummary straight =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(1));
    expectIdentical(straight, result.summary);
    std::remove(path.c_str());
}

TEST(CampaignDeathTest, FingerprintMismatchIsFatal)
{
    SignalGuard::reset();
    const std::string path = tempPath("mismatch");
    std::remove(path.c_str());
    {
        CampaignOptions options;
        options.checkpointPath = path;
        options.shards = 2;
        CampaignRunner runner(testFingerprint(1, 4, 2), options);
    }
    CampaignOptions options;
    options.checkpointPath = path;
    options.resume = true;
    options.shards = 2;
    // Different seed => different campaign => refuse to mix.
    EXPECT_EXIT(
        CampaignRunner(testFingerprint(2, 4, 2), options),
        ::testing::ExitedWithCode(1), "different campaign");
    std::remove(path.c_str());
}

TEST(Campaign, ResumeWithoutFileStartsFresh)
{
    SignalGuard::reset();
    const std::string path = tempPath("fresh");
    std::remove(path.c_str());
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    CampaignOptions options;
    options.checkpointPath = path;
    options.resume = true;  // Nothing to resume: warn and start fresh.
    options.shards = 2;
    CampaignRunner runner(testFingerprint(3, 4, 2), options);
    const CampaignResult result =
        runner.runUnit("matrix", simulator, {}, 4, 3, withThreads(1));
    ASSERT_FALSE(result.interrupted);
    EXPECT_EQ(result.shardsRun, 2u);
    EXPECT_TRUE(fileExists(path));
    std::remove(path.c_str());
}

TEST(Campaign, EmptyPathDisablesPersistence)
{
    SignalGuard::reset();
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    CampaignOptions options;
    options.shards = 3;
    CampaignRunner runner(testFingerprint(4, 6, 3), options);
    EXPECT_FALSE(runner.log().persistent());
    const CampaignResult result =
        runner.runUnit("matrix", simulator, {}, 6, 4, withThreads(2));
    ASSERT_FALSE(result.interrupted);
    const LifetimeSummary straight =
        simulator.runTrials(6, {}, 4, withThreads(2));
    expectIdentical(straight, result.summary);
}

} // namespace
} // namespace relaxfault
