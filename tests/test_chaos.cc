/**
 * @file
 * Chaos-layer tests: deterministic failpoint injection, errno-carrying
 * fs diagnostics, checkpoint publish retry, and fleet supervision
 * (heartbeat watchdog, shard quarantine).
 *
 * The contract under test is the one `bench/chaos_soak` enforces
 * end-to-end: under any shipped failpoint schedule a campaign either
 * completes with a bit-identical summary or fails loudly with a
 * site-named diagnostic — never a hang, never a corrupt checkpoint,
 * never a silently dropped shard. The env surface
 * (`RELAXFAULT_FAILPOINTS`) resolves through `applySpecList` at process
 * startup, so the death tests on `applySpecList`/`parseSpec` pin the
 * env contract too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>
#include <unistd.h>

#include "campaign/checkpoint.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/shm_ring.h"
#include "common/signal_guard.h"
#include "fleet/fleet_sim.h"
#include "fleet/worker_pool.h"
#include "repair/relaxfault_repair.h"
#include "telemetry/metrics.h"

namespace relaxfault {
namespace {

using failpoint::applySpecList;
using failpoint::arm;
using failpoint::describeArmed;
using failpoint::disarmAll;
using failpoint::evalCount;
using failpoint::fireCount;
using failpoint::parseSpec;

/** Every test leaves the process-global failpoint table clean. */
class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        disarmAll();
        failpoint::setClock(nullptr);
    }
    void TearDown() override
    {
        disarmAll();
        failpoint::setClock(nullptr);
    }
};

using ChaosDeathTest = ChaosTest;

FailpointSpec
errorSpec(int errnum, FailpointSchedule schedule = FailpointSchedule::Always,
          uint64_t n = 0)
{
    FailpointSpec spec;
    spec.effect = FailpointEffect::Error;
    spec.errnum = errnum;
    spec.schedule = schedule;
    spec.n = n;
    return spec;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "relaxfault_chaos_" + name + "_" +
           std::to_string(::getpid());
}

std::string
tmpFileOf(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

uint64_t
counterValue(const MetricsSnapshot &snapshot, const std::string &name)
{
    for (const auto &[counter, value] : snapshot.counters) {
        if (counter == name)
            return value;
    }
    return 0;
}

// ---------------------------------------------------------------------
// Spec grammar.

TEST_F(ChaosTest, SpecParsingCoversTheGrammar)
{
    FailpointSpec spec = parseSpec("error");
    EXPECT_EQ(spec.effect, FailpointEffect::Error);
    EXPECT_EQ(spec.errnum, EIO);
    EXPECT_EQ(spec.schedule, FailpointSchedule::Always);

    spec = parseSpec("error=ENOSPC@nth=2");
    EXPECT_EQ(spec.effect, FailpointEffect::Error);
    EXPECT_EQ(spec.errnum, ENOSPC);
    EXPECT_EQ(spec.schedule, FailpointSchedule::Nth);
    EXPECT_EQ(spec.n, 2u);

    spec = parseSpec("short@every=3");
    EXPECT_EQ(spec.effect, FailpointEffect::ShortWrite);
    EXPECT_EQ(spec.schedule, FailpointSchedule::EveryKth);
    EXPECT_EQ(spec.n, 3u);

    spec = parseSpec("torn");
    EXPECT_EQ(spec.effect, FailpointEffect::TornRename);

    spec = parseSpec("delay=25@p=0.5/77");
    EXPECT_EQ(spec.effect, FailpointEffect::Delay);
    EXPECT_EQ(spec.delayMs, 25u);
    EXPECT_EQ(spec.schedule, FailpointSchedule::Prob);
    EXPECT_EQ(spec.probability, 0.5);
    EXPECT_EQ(spec.seed, 77u);

    spec = parseSpec("abort@nth=1");
    EXPECT_EQ(spec.effect, FailpointEffect::Abort);
    EXPECT_EQ(spec.n, 1u);
}

TEST_F(ChaosTest, ApplySpecListArmsNamedSites)
{
    EXPECT_FALSE(failpoint::anyArmed());
    applySpecList("fs.write:error=ENOSPC@nth=2,shm.pop:delay=5");
    EXPECT_TRUE(failpoint::anyArmed());
    const std::string armed = describeArmed();
    EXPECT_NE(armed.find("fs.write:error=ENOSPC@nth=2"),
              std::string::npos)
        << armed;
    EXPECT_NE(armed.find("shm.pop:delay=5"), std::string::npos) << armed;
    disarmAll();
    EXPECT_FALSE(failpoint::anyArmed());
    EXPECT_TRUE(describeArmed().empty());
}

TEST_F(ChaosTest, DescribeArmedRoundTripsThroughTheParser)
{
    applySpecList("fs.write:short@every=3,fs.rename:torn@nth=1,"
                  "ckpt.publish:error=EDQUOT@p=0.25/9");
    const std::string armed = describeArmed();
    disarmAll();
    // The description must itself be a valid spec list (replayable).
    applySpecList(armed);
    EXPECT_EQ(describeArmed(), armed);
}

// ---------------------------------------------------------------------
// Schedule determinism.

TEST_F(ChaosTest, NthFiresExactlyOnceAtTheNthEvaluation)
{
    arm(FailpointSite::FsWrite,
        errorSpec(EIO, FailpointSchedule::Nth, 3));
    for (unsigned call = 1; call <= 10; ++call) {
        const FailpointHit hit =
            failpoint::eval(FailpointSite::FsWrite);
        EXPECT_EQ(static_cast<bool>(hit), call == 3) << "call " << call;
    }
    EXPECT_EQ(evalCount(FailpointSite::FsWrite), 10u);
    EXPECT_EQ(fireCount(FailpointSite::FsWrite), 1u);
}

TEST_F(ChaosTest, EveryKthFiresPeriodically)
{
    arm(FailpointSite::FsFsync,
        errorSpec(EIO, FailpointSchedule::EveryKth, 4));
    unsigned fires = 0;
    for (unsigned call = 1; call <= 12; ++call) {
        if (failpoint::eval(FailpointSite::FsFsync)) {
            ++fires;
            EXPECT_EQ(call % 4, 0u) << "call " << call;
        }
    }
    EXPECT_EQ(fires, 3u);
    EXPECT_EQ(fireCount(FailpointSite::FsFsync), 3u);
}

TEST_F(ChaosTest, ProbScheduleReplaysBitIdenticallyFromItsSeed)
{
    FailpointSpec spec;
    spec.effect = FailpointEffect::Error;
    spec.errnum = EIO;
    spec.schedule = FailpointSchedule::Prob;
    spec.probability = 0.5;
    spec.seed = 99;

    const auto pattern = [&]() {
        arm(FailpointSite::FsOpen, spec);
        std::vector<bool> fired;
        for (unsigned call = 0; call < 64; ++call)
            fired.push_back(
                static_cast<bool>(failpoint::eval(FailpointSite::FsOpen)));
        return fired;
    };
    const std::vector<bool> first = pattern();
    const std::vector<bool> replay = pattern();
    EXPECT_EQ(first, replay);
    // A fair 64-flip pattern is neither empty nor full (p < 2^-63).
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 64);

    spec.seed = 100;  // A different stream, same probability.
    arm(FailpointSite::FsOpen, spec);
    std::vector<bool> other;
    for (unsigned call = 0; call < 64; ++call)
        other.push_back(
            static_cast<bool>(failpoint::eval(FailpointSite::FsOpen)));
    EXPECT_NE(first, other);
}

TEST_F(ChaosTest, DisabledSitesEvaluateQuietly)
{
    EXPECT_FALSE(failpoint::anyArmed());
    const uint64_t before = evalCount(FailpointSite::FsWrite);
    const FailpointHit hit = failpoint::eval(FailpointSite::FsWrite);
    EXPECT_FALSE(hit);
    EXPECT_EQ(hit.effect, FailpointEffect::None);
    // A disabled eval never reaches the armed-site counters.
    EXPECT_EQ(evalCount(FailpointSite::FsWrite), before);
}

TEST_F(ChaosTest, RearmingResetsTheCallCounters)
{
    arm(FailpointSite::FsWrite,
        errorSpec(EIO, FailpointSchedule::Nth, 2));
    failpoint::eval(FailpointSite::FsWrite);
    failpoint::eval(FailpointSite::FsWrite);
    EXPECT_EQ(evalCount(FailpointSite::FsWrite), 2u);
    EXPECT_EQ(fireCount(FailpointSite::FsWrite), 1u);
    arm(FailpointSite::FsWrite,
        errorSpec(EIO, FailpointSchedule::Nth, 2));
    EXPECT_EQ(evalCount(FailpointSite::FsWrite), 0u);
    EXPECT_EQ(fireCount(FailpointSite::FsWrite), 0u);
    // The nth schedule starts over: fires again on its (new) 2nd call.
    EXPECT_FALSE(failpoint::eval(FailpointSite::FsWrite));
    EXPECT_TRUE(failpoint::eval(FailpointSite::FsWrite));
}

// ---------------------------------------------------------------------
// Flag/env surface death tests. RELAXFAULT_FAILPOINTS resolves through
// applySpecList at startup, so these pin the env contract as well.

TEST_F(ChaosDeathTest, UnknownSiteIsFatalListingKnownSites)
{
    EXPECT_EXIT(applySpecList("fs.wrote:error"),
                ::testing::ExitedWithCode(1),
                "unknown site 'fs.wrote'.*known sites: fs.open, "
                "fs.write, fs.fsync, fs.rename, fs.close, ckpt.publish, "
                "shm.pop, fleet.pop");
}

TEST_F(ChaosDeathTest, EntryWithoutSpecIsFatal)
{
    EXPECT_EXIT(applySpecList("fs.write"), ::testing::ExitedWithCode(1),
                "has no spec .*site:effect");
}

TEST_F(ChaosDeathTest, MalformedSpecsAreFatalNamingTheGrammar)
{
    EXPECT_EXIT(parseSpec("explode"), ::testing::ExitedWithCode(1),
                "unknown effect 'explode'.*grammar");
    EXPECT_EXIT(parseSpec("error@sometimes"),
                ::testing::ExitedWithCode(1),
                "unknown schedule 'sometimes'");
    EXPECT_EXIT(parseSpec("delay"), ::testing::ExitedWithCode(1),
                "'delay' needs a duration");
    EXPECT_EXIT(parseSpec("error=EWHAT"), ::testing::ExitedWithCode(1),
                "unknown errno 'EWHAT'.*ENOSPC");
    EXPECT_EXIT(parseSpec("error@p=1.5"), ::testing::ExitedWithCode(1),
                "bad probability '1.5'");
    EXPECT_EXIT(parseSpec("error@nth=0"), ::testing::ExitedWithCode(1),
                "nth=N is 1-based");
}

TEST_F(ChaosDeathTest, IncompatibleEffectSitePairingsAreFatal)
{
    FailpointSpec spec;
    spec.effect = FailpointEffect::ShortWrite;
    EXPECT_EXIT(arm(FailpointSite::FsRename, spec),
                ::testing::ExitedWithCode(1),
                "'short' only applies to fs.write");
    spec.effect = FailpointEffect::TornRename;
    EXPECT_EXIT(arm(FailpointSite::FsWrite, spec),
                ::testing::ExitedWithCode(1),
                "'torn' only applies to fs.rename");
    EXPECT_EXIT(applySpecList("fleet.pop:error=EIO"),
                ::testing::ExitedWithCode(1),
                "incompatible with site 'fleet.pop'");
}

// ---------------------------------------------------------------------
// fs layer: errno-carrying diagnostics + injected syscall failures.

TEST_F(ChaosTest, InjectedEnospcNamesTheSyscallAndPreservesOldContent)
{
    const std::string path = tempPath("enospc");
    ASSERT_TRUE(atomicWriteFile(path, "old content\n"));

    arm(FailpointSite::FsWrite, errorSpec(ENOSPC));
    const IoResult io = atomicWriteFile(path, "new content\n");
    EXPECT_FALSE(io);
    EXPECT_EQ(io.errnum, ENOSPC);
    EXPECT_STREQ(io.op, "write");
    const std::string diagnostic = io.describe(path);
    EXPECT_NE(diagnostic.find("write(" + path + ")"), std::string::npos)
        << diagnostic;
    EXPECT_NE(diagnostic.find(std::strerror(ENOSPC)), std::string::npos)
        << diagnostic;

    // Atomicity: the old content survives and the tmp file is gone.
    disarmAll();
    std::string content;
    ASSERT_TRUE(readFile(path, content));
    EXPECT_EQ(content, "old content\n");
    EXPECT_FALSE(fileExists(tmpFileOf(path)));
    std::remove(path.c_str());
}

TEST_F(ChaosTest, SingleShortWriteRecoversWithIntactContent)
{
    const std::string path = tempPath("short_once");
    FailpointSpec spec;
    spec.effect = FailpointEffect::ShortWrite;
    spec.schedule = FailpointSchedule::Nth;
    spec.n = 1;
    arm(FailpointSite::FsWrite, spec);

    const std::string payload(4096, 'x');
    ASSERT_TRUE(atomicWriteFile(path, payload));
    EXPECT_GE(evalCount(FailpointSite::FsWrite), 2u);

    disarmAll();
    std::string content;
    ASSERT_TRUE(readFile(path, content));
    EXPECT_EQ(content, payload);
    std::remove(path.c_str());
}

TEST_F(ChaosTest, ShortWriteToZeroFailsInsteadOfSpinning)
{
    // `short@always` halves every request: 8 -> 4 -> 2 -> 1 -> 0, and a
    // zero-length write returns 0. Before the write()==0 fix this loop
    // never advanced `written` and spun forever; now it must fail
    // loudly (the ctest TIMEOUT would catch a regression to spinning).
    const std::string path = tempPath("short_spin");
    FailpointSpec spec;
    spec.effect = FailpointEffect::ShortWrite;
    arm(FailpointSite::FsWrite, spec);

    const IoResult io = atomicWriteFile(path, "12345678");
    EXPECT_FALSE(io);
    EXPECT_STREQ(io.op, "write");
    EXPECT_EQ(io.errnum, EIO);
    disarmAll();
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(tmpFileOf(path)));
}

TEST_F(ChaosTest, TornRenameLeavesTheTmpAndTheOldContent)
{
    const std::string path = tempPath("torn");
    ASSERT_TRUE(atomicWriteFile(path, "old\n"));

    FailpointSpec spec;
    spec.effect = FailpointEffect::TornRename;
    spec.schedule = FailpointSchedule::Nth;
    spec.n = 1;
    arm(FailpointSite::FsRename, spec);

    const IoResult io = atomicWriteFile(path, "new\n");
    EXPECT_FALSE(io);
    EXPECT_STREQ(io.op, "rename");

    // The "crash" happened between write and rename: the destination
    // still has the old content and the fully-written tmp is stranded.
    std::string content;
    ASSERT_TRUE(readFile(path, content));
    EXPECT_EQ(content, "old\n");
    ASSERT_TRUE(fileExists(tmpFileOf(path)));
    ASSERT_TRUE(readFile(tmpFileOf(path), content));
    EXPECT_EQ(content, "new\n");

    // The retry (nth=1 already fired) publishes and consumes the tmp.
    ASSERT_TRUE(atomicWriteFile(path, "new\n"));
    ASSERT_TRUE(readFile(path, content));
    EXPECT_EQ(content, "new\n");
    EXPECT_FALSE(fileExists(tmpFileOf(path)));
    std::remove(path.c_str());
}

TEST_F(ChaosTest, EverySyscallSiteCarriesItsInjectedErrno)
{
    const std::string path = tempPath("sites");
    struct Case
    {
        FailpointSite site;
        int errnum;
        const char *op;
    };
    const Case cases[] = {
        {FailpointSite::FsOpen, EMFILE, "open"},
        {FailpointSite::FsFsync, EIO, "fsync"},
        {FailpointSite::FsClose, EIO, "close"},
        {FailpointSite::FsRename, EACCES, "rename"},
    };
    for (const Case &c : cases) {
        disarmAll();
        arm(c.site, errorSpec(c.errnum));
        const IoResult io = atomicWriteFile(path, "payload");
        EXPECT_FALSE(io) << c.op;
        EXPECT_EQ(io.errnum, c.errnum) << c.op;
        EXPECT_STREQ(io.op, c.op);
        disarmAll();
        EXPECT_FALSE(fileExists(tmpFileOf(path))) << c.op;
    }
    EXPECT_FALSE(fileExists(path));
}

TEST_F(ChaosTest, ReadFileReportsTheFailingSyscall)
{
    const std::string missing = tempPath("does_not_exist");
    std::string out;
    const IoResult io = readFile(missing, out);
    EXPECT_FALSE(io);
    EXPECT_STREQ(io.op, "open");
    EXPECT_EQ(io.errnum, ENOENT);
    EXPECT_NE(io.describe(missing).find(std::strerror(ENOENT)),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Checkpoint publish: bounded retry with backoff on the injected clock.

CampaignFingerprint
chaosFingerprint()
{
    CampaignFingerprint fingerprint;
    fingerprint.campaign = "test_chaos";
    fingerprint.seed = 7;
    fingerprint.trials = 4;
    fingerprint.shards = 2;
    fingerprint.config = "chaos";
    return fingerprint;
}

ShardRecord
chaosRecord(unsigned shard)
{
    ShardRecord record;
    record.unit = "unit";
    record.shard = shard;
    record.firstTrial = shard * 2;
    LifetimeMetrics m;
    m.faultyNodes = 1.0 + shard;
    record.trials.push_back(m);
    return record;
}

TEST_F(ChaosTest, PublishRetriesTransientFailuresOnTheInjectedClock)
{
    const std::string path = tempPath("retry.ckpt");
    std::remove(path.c_str());
    FakeClock clock;
    MetricRegistry metrics;
    CheckpointLog log(path, chaosFingerprint(), /*resume=*/false);
    log.setClock(&clock);
    log.setMetrics(&metrics);
    log.setRetryPolicy({/*maxAttempts=*/5, /*backoffMs=*/10});

    // Attempt 1 dies at the publish site, attempt 2 dies at the first
    // write(2) of the republish, attempt 3 succeeds: the backoff ladder
    // must be exactly 10ms then 20ms, recorded by the FakeClock (no
    // real sleeps anywhere in this test).
    arm(FailpointSite::CkptPublish,
        errorSpec(ENOSPC, FailpointSchedule::Nth, 1));
    arm(FailpointSite::FsWrite,
        errorSpec(ENOSPC, FailpointSchedule::Nth, 1));
    log.commit(chaosRecord(0));
    disarmAll();

    EXPECT_EQ(log.publishRetries(), 2u);
    const std::vector<std::chrono::milliseconds> expected = {
        std::chrono::milliseconds(10), std::chrono::milliseconds(20)};
    EXPECT_EQ(clock.sleeps(), expected);
    EXPECT_EQ(counterValue(metrics.snapshot(), "fs.retries"), 2u);

    // The commit that eventually succeeded is durable and resumable.
    const CheckpointLog resumed(path, chaosFingerprint(),
                                /*resume=*/true);
    EXPECT_NE(resumed.find("unit", 0), nullptr);
    EXPECT_EQ(resumed.tornLines(), 0u);
    std::remove(path.c_str());
}

TEST_F(ChaosDeathTest, PublishExhaustionIsFatalWithASiteDiagnostic)
{
    const std::string path = tempPath("exhaust.ckpt");
    std::remove(path.c_str());
    FakeClock clock;
    CheckpointLog log(path, chaosFingerprint(), /*resume=*/false);
    log.setClock(&clock);
    log.setRetryPolicy({/*maxAttempts=*/3, /*backoffMs=*/1});

    arm(FailpointSite::CkptPublish, errorSpec(ENOSPC));
    EXPECT_EXIT(log.commit(chaosRecord(0)),
                ::testing::ExitedWithCode(1),
                "cannot write checkpoint after 3 attempt.*publish\\(.*"
                "No space left on device");
    disarmAll();
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// shm ring: injected pop delays run on the failpoint clock.

TEST_F(ChaosTest, ShmPopDelaySleepsOnTheInjectedClock)
{
    FakeClock clock;
    failpoint::setClock(&clock);
    FailpointSpec spec;
    spec.effect = FailpointEffect::Delay;
    spec.delayMs = 7;
    spec.schedule = FailpointSchedule::EveryKth;
    spec.n = 2;
    arm(FailpointSite::ShmPop, spec);

    ShmRing ring = ShmRing::create(4);
    ASSERT_TRUE(ring.tryPush(11));
    ASSERT_TRUE(ring.tryPush(22));
    uint64_t value = 0;
    ASSERT_TRUE(ring.tryPop(value));
    EXPECT_EQ(value, 11u);
    ASSERT_TRUE(ring.tryPop(value));  // 2nd pop: the delay fires here.
    EXPECT_EQ(value, 22u);
    EXPECT_FALSE(ring.tryPop(value));  // 3rd eval, no fire.

    const std::vector<std::chrono::milliseconds> expected = {
        std::chrono::milliseconds(7)};
    EXPECT_EQ(clock.sleeps(), expected);
    EXPECT_EQ(evalCount(FailpointSite::ShmPop), 3u);
    EXPECT_EQ(fireCount(FailpointSite::ShmPop), 1u);
}

// ---------------------------------------------------------------------
// Fleet supervision: hung-worker watchdog and shard quarantine.

LifetimeConfig
chaosFleetConfig()
{
    LifetimeConfig config;
    config.nodesPerSystem = 128;
    config.faultModel.fitScale = 10.0;
    config.policy = ReplacePolicy::AfterDue;
    return config;
}

FleetSimulator::MechanismFactory
chaosFactory(const LifetimeConfig &config)
{
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    return [geometry, llc] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{4, 32768}, true);
    };
}

FleetTrialOptions
chaosRun(MetricRegistry *metrics = nullptr)
{
    FleetTrialOptions options;
    options.mode = FleetMode::Lazy;
    options.parallel.threads = 1;
    options.metrics = metrics;
    return options;
}

CampaignFingerprint
fleetFingerprint(uint64_t seed, uint64_t trials, unsigned shards)
{
    CampaignFingerprint fingerprint;
    fingerprint.campaign = "test_chaos_fleet";
    fingerprint.seed = seed;
    fingerprint.trials = trials;
    fingerprint.shards = shards;
    fingerprint.config = "chaos";
    return fingerprint;
}

void
expectIdentical(const RunningStat &a, const RunningStat &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectIdentical(const LifetimeSummary &a, const LifetimeSummary &b)
{
    expectIdentical(a.faultyNodes, b.faultyNodes);
    expectIdentical(a.multiDeviceFaultDimms, b.multiDeviceFaultDimms);
    expectIdentical(a.dues, b.dues);
    expectIdentical(a.sdcs, b.sdcs);
    expectIdentical(a.replacements, b.replacements);
    expectIdentical(a.repairedFaults, b.repairedFaults);
    expectIdentical(a.permanentFaults, b.permanentFaults);
    expectIdentical(a.fullyRepairedNodes, b.fullyRepairedNodes);
    expectIdentical(a.budgetExhausted, b.budgetExhausted);
    expectIdentical(a.degradedToRetirement, b.degradedToRetirement);
    expectIdentical(a.degradedDues, b.degradedDues);
    expectIdentical(a.failStops, b.failStops);
}

TEST_F(ChaosTest, HungWorkerIsKilledAndItsShardRecoveredBitIdentically)
{
    SignalGuard::reset();
    const LifetimeConfig config = chaosFleetConfig();
    const FleetSimulator simulator(config);
    const auto factory = chaosFactory(config);
    constexpr unsigned kTrials = 8;
    constexpr uint64_t kSeed = 42;

    const LifetimeSummary straight =
        simulator.runTrials(kTrials, factory, kSeed, chaosRun());

    // Whichever worker pops shard 1 in round 1 goes to sleep for far
    // longer than the watchdog deadline — a hang, not a crash. The
    // watchdog must SIGKILL it within ~watchdogMs on the parent's own
    // clock and round 2 must re-run the reclaimed shard (round 2 pops
    // skip the stall, so recovery is deterministic, never timing-tuned).
    WorkerOptions options;
    options.workers = 2;
    options.shards = 4;
    options.maxRounds = 3;
    options.watchdogMs = 250;
    options.pollMs = 5;
    options.onWorkerPop = [](unsigned, unsigned round, uint64_t shard) {
        if (round == 1 && shard == 1)
            ::sleep(600);  // Far past the deadline; SIGKILL ends it.
    };
    WorkerCampaignRunner pool(fleetFingerprint(kSeed, kTrials, 4),
                              options);
    MetricRegistry metrics;
    const CampaignResult result = pool.runUnitFleet(
        "fleet", simulator, factory, kTrials, kSeed,
        chaosRun(&metrics));

    ASSERT_FALSE(result.interrupted);
    EXPECT_EQ(result.shardsRun, 4u);
    EXPECT_TRUE(result.quarantinedShards.empty());
    expectIdentical(straight, result.summary);
    EXPECT_GE(pool.workersStalled(), 1u);
    EXPECT_GE(counterValue(metrics.snapshot(), "fleet.workers_stalled"),
              1u);
}

TEST_F(ChaosTest, PoisonShardIsQuarantinedAndTheMergeStaysPartial)
{
    SignalGuard::reset();
    const LifetimeConfig config = chaosFleetConfig();
    const FleetSimulator simulator(config);
    const auto factory = chaosFactory(config);
    constexpr unsigned kTrials = 8;
    constexpr unsigned kShards = 4;
    constexpr uint64_t kSeed = 43;
    const std::string base = tempPath("quarantine.ckpt");

    // Shard 2 SIGKILLs every worker that leases it, in every round: a
    // poison shard. With quarantineAfter=2 the supervisor gives up on
    // it after two distinct crashed attempts instead of failing the
    // whole campaign.
    WorkerOptions options;
    options.workers = 2;
    options.checkpointPath = base;
    options.shards = kShards;
    options.maxRounds = 4;
    options.quarantineAfter = 2;
    options.onWorkerPop = [](unsigned, unsigned, uint64_t shard) {
        if (shard == 2)
            std::raise(SIGKILL);
    };
    WorkerCampaignRunner pool(fleetFingerprint(kSeed, kTrials, kShards),
                              options);
    MetricRegistry metrics;
    const CampaignResult result = pool.runUnitFleet(
        "fleet", simulator, factory, kTrials, kSeed,
        chaosRun(&metrics));

    ASSERT_FALSE(result.interrupted);
    ASSERT_EQ(result.quarantinedShards,
              (std::vector<unsigned>{2u}));
    EXPECT_EQ(result.shardsRun, kShards - 1);
    EXPECT_EQ(pool.shardsQuarantined(), 1u);
    EXPECT_EQ(counterValue(metrics.snapshot(),
                           "fleet.shards_quarantined"),
              1u);

    // The partial summary is exactly the healthy shards, bit for bit.
    LifetimeSummary expected;
    for (unsigned shard = 0; shard < kShards; ++shard) {
        if (shard == 2)
            continue;
        const uint64_t first =
            CampaignRunner::shardFirstTrial(kTrials, kShards, shard);
        const uint64_t end = CampaignRunner::shardFirstTrial(
            kTrials, kShards, shard + 1);
        for (const LifetimeMetrics &m : simulator.runTrialRange(
                 first, static_cast<unsigned>(end - first), factory,
                 kSeed, chaosRun()))
            expected.addTrial(m);
    }
    expectIdentical(expected, result.summary);

    // Forensics: the quarantine verdict is on disk in the supervisor
    // log, never silently dropped.
    const std::string supervisor =
        WorkerCampaignRunner::supervisorLogPath(base);
    ASSERT_TRUE(fileExists(supervisor));
    std::string forensic;
    ASSERT_TRUE(readFile(supervisor, forensic));
    EXPECT_NE(forensic.find("shard_quarantined"), std::string::npos);
    EXPECT_NE(forensic.find("2 distinct worker attempt"),
              std::string::npos)
        << forensic;

    for (unsigned slot = 0; slot < WorkerCampaignRunner::kMaxWorkers;
         ++slot)
        std::remove(
            WorkerCampaignRunner::workerLogPath(base, slot).c_str());
    std::remove(supervisor.c_str());
}

} // namespace
} // namespace relaxfault
