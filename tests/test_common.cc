/**
 * @file
 * Unit tests for the common utilities: bit operations, RNG and its
 * distribution samplers, statistics accumulators, table printer, CLI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/bitops.h"
#include "common/cli.h"
#include "common/clock.h"
#include "common/fs.h"
#include "common/log.h"
#include "common/signal_guard.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace relaxfault {
namespace {

TEST(Bitops, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(64), ~uint64_t{0});
}

TEST(Bitops, ExtractDepositRoundTrip)
{
    const uint64_t value = 0xdeadbeefcafebabeull;
    for (unsigned lsb = 0; lsb < 60; lsb += 7) {
        for (unsigned width = 1; width <= 12; ++width) {
            const uint64_t field = extractBits(value, lsb, width);
            const uint64_t rebuilt = depositBits(0, lsb, width, field);
            EXPECT_EQ(extractBits(rebuilt, lsb, width), field);
        }
    }
}

TEST(Bitops, DepositDoesNotDisturbOtherBits)
{
    const uint64_t base = 0xffffffffffffffffull;
    const uint64_t result = depositBits(base, 8, 8, 0x00);
    EXPECT_EQ(result, 0xffffffffffff00ffull);
}

TEST(Bitops, IndexBits)
{
    EXPECT_EQ(indexBits(1), 0u);
    EXPECT_EQ(indexBits(2), 1u);
    EXPECT_EQ(indexBits(8192), 13u);
    EXPECT_EQ(indexBits(3), 2u);
}

TEST(Bitops, IsPowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(Bitops, XorFoldWidth)
{
    for (uint64_t v : {0x1234567890abcdefull, 0xffffffffffffffffull}) {
        EXPECT_LT(xorFold(v, 13), uint64_t{1} << 13);
    }
    EXPECT_EQ(xorFold(0, 13), 0u);
    // Folding a value narrower than the width is the identity.
    EXPECT_EQ(xorFold(0x5a, 8), 0x5au);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.uniformRange(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, PoissonMeanAndVariance)
{
    Rng rng(13);
    RunningStat stat;
    const double mean = 3.7;
    for (int i = 0; i < 40000; ++i)
        stat.add(static_cast<double>(rng.poisson(mean)));
    EXPECT_NEAR(stat.mean(), mean, 0.06);
    EXPECT_NEAR(stat.variance(), mean, 0.15);
}

TEST(Rng, PoissonTinyMeanMatchesRareEvents)
{
    Rng rng(17);
    const double mean = 2e-3;
    uint64_t hits = 0;
    const int trials = 2'000'000;
    for (int i = 0; i < trials; ++i)
        hits += rng.poisson(mean);
    EXPECT_NEAR(static_cast<double>(hits) / trials, mean, 3e-4);
}

TEST(Rng, PoissonLargeMeanNormalPath)
{
    Rng rng(19);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(static_cast<double>(rng.poisson(200.0)));
    EXPECT_NEAR(stat.mean(), 200.0, 1.0);
    EXPECT_NEAR(stat.stddev(), std::sqrt(200.0), 1.0);
}

TEST(Rng, LognormalMoments)
{
    Rng rng(23);
    RunningStat stat;
    const double mean = 13.0;
    const double variance = 13.0 / 4.0;
    for (int i = 0; i < 60000; ++i)
        stat.add(rng.lognormalMeanVar(mean, variance));
    EXPECT_NEAR(stat.mean(), mean, 0.1);
    EXPECT_NEAR(stat.variance(), variance, 0.25);
}

TEST(Rng, LognormalDegenerateCases)
{
    Rng rng(29);
    EXPECT_EQ(rng.lognormalMeanVar(0.0, 1.0), 0.0);
    EXPECT_EQ(rng.lognormalMeanVar(5.0, 0.0), 5.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(31);
    RunningStat stat;
    for (int i = 0; i < 40000; ++i)
        stat.add(rng.exponential(0.25));
    EXPECT_NEAR(stat.mean(), 4.0, 0.1);
}

TEST(Rng, BinomialSmallAndLarge)
{
    Rng rng(37);
    RunningStat small;
    for (int i = 0; i < 20000; ++i)
        small.add(static_cast<double>(rng.binomial(20, 0.3)));
    EXPECT_NEAR(small.mean(), 6.0, 0.1);

    RunningStat large;
    for (int i = 0; i < 20000; ++i)
        large.add(static_cast<double>(rng.binomial(100000, 0.001)));
    EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(99);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkAtIsPure)
{
    Rng a = Rng::forkAt(42, 17);
    Rng b = Rng::forkAt(42, 17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkAtDistinctIndexesAreIndependent)
{
    // Adjacent counters and adjacent seeds must all decorrelate.
    Rng a = Rng::forkAt(42, 0);
    Rng b = Rng::forkAt(42, 1);
    Rng c = Rng::forkAt(43, 0);
    int same_ab = 0;
    int same_ac = 0;
    for (int i = 0; i < 64; ++i) {
        const uint64_t va = a.next();
        same_ab += va == b.next();
        same_ac += va == c.next();
    }
    EXPECT_LT(same_ab, 2);
    EXPECT_LT(same_ac, 2);
}

TEST(Rng, ForkAtStreamsDoNotCollide)
{
    // First outputs of many derived streams are pairwise distinct — a
    // counter scheme that reused states would show up immediately here.
    std::vector<uint64_t> firsts;
    for (uint64_t index = 0; index < 4096; ++index)
        firsts.push_back(Rng::forkAt(1206, index).next());
    std::sort(firsts.begin(), firsts.end());
    EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()),
              firsts.end());
}

TEST(RunningStat, MatchesDirectComputation)
{
    RunningStat stat;
    const double values[] = {1.0, 2.5, -3.0, 7.25, 0.0};
    double sum = 0.0;
    for (double v : values) {
        stat.add(v);
        sum += v;
    }
    const double mean = sum / 5;
    double m2 = 0.0;
    for (double v : values)
        m2 += (v - mean) * (v - mean);
    EXPECT_EQ(stat.count(), 5u);
    EXPECT_DOUBLE_EQ(stat.mean(), mean);
    EXPECT_NEAR(stat.variance(), m2 / 4, 1e-12);
    EXPECT_DOUBLE_EQ(stat.min(), -3.0);
    EXPECT_DOUBLE_EQ(stat.max(), 7.25);
}

TEST(RunningStat, EmptyAndSingle)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.variance(), 0.0);
    stat.add(4.0);
    EXPECT_EQ(stat.variance(), 0.0);
    EXPECT_EQ(stat.stderror(), 0.0);
}

TEST(RunningStat, MergeEmptyCases)
{
    RunningStat empty_a;
    RunningStat empty_b;
    empty_a.merge(empty_b);
    EXPECT_EQ(empty_a.count(), 0u);

    RunningStat filled;
    filled.add(1.0);
    filled.add(3.0);
    RunningStat into_empty;
    into_empty.merge(filled);
    EXPECT_EQ(into_empty.count(), 2u);
    EXPECT_DOUBLE_EQ(into_empty.mean(), 2.0);
    EXPECT_DOUBLE_EQ(into_empty.variance(), 2.0);

    filled.merge(empty_a);
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
}

TEST(RunningStat, MergeMatchesSinglePassOnRandomSplits)
{
    // Property test of Chan's merge: for random data and a random split
    // point, shard-accumulate + merge must match single-pass Welford to
    // 1e-12 relative error, with count/min/max exact. (The sum is also
    // 1e-12: reassociating FP addition shifts its last bits.)
    Rng rng(20260805);
    for (int round = 0; round < 60; ++round) {
        const size_t n = 2 + rng.uniformInt(400);
        std::vector<double> values;
        values.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            // Heavy-tailed and shifted, to stress the moment update.
            const double v = rng.lognormalMeanVar(20.0, 5.0) +
                             rng.normal(0.0, 3.0);
            values.push_back(v);
        }
        const size_t split = rng.uniformInt(n + 1);

        RunningStat single;
        for (double v : values)
            single.add(v);
        RunningStat left;
        RunningStat right;
        for (size_t i = 0; i < n; ++i)
            (i < split ? left : right).add(values[i]);
        left.merge(right);

        EXPECT_EQ(left.count(), single.count());
        EXPECT_DOUBLE_EQ(left.min(), single.min());
        EXPECT_DOUBLE_EQ(left.max(), single.max());
        EXPECT_NEAR(left.sum(), single.sum(),
                    1e-12 * std::abs(single.sum()));
        EXPECT_NEAR(left.mean(), single.mean(),
                    1e-12 * std::abs(single.mean()));
        const double tolerance =
            1e-12 * std::max(single.variance(), 1e-300);
        EXPECT_NEAR(left.variance(), single.variance(), tolerance);
    }
}

TEST(RunningStat, MergeManyShardsAssociates)
{
    // Folding k shards left-to-right matches single-pass accumulation,
    // the way per-chunk summaries are folded after a parallel run.
    Rng rng(99);
    RunningStat single;
    RunningStat folded;
    for (int shard = 0; shard < 16; ++shard) {
        RunningStat part;
        const size_t n = 1 + rng.uniformInt(50);
        for (size_t i = 0; i < n; ++i) {
            const double v = rng.exponential(0.1);
            single.add(v);
            part.add(v);
        }
        folded.merge(part);
    }
    EXPECT_EQ(folded.count(), single.count());
    EXPECT_NEAR(folded.mean(), single.mean(),
                1e-12 * single.mean());
    EXPECT_NEAR(folded.variance(), single.variance(),
                1e-12 * single.variance());
}

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const unsigned chunk : {0u, 1u, 7u, 1000u}) {
            const size_t count = 257;
            std::vector<std::atomic<int>> visits(count);
            ParallelConfig config;
            config.threads = threads;
            config.chunk = chunk;
            parallelFor(
                count,
                [&](size_t begin, size_t end) {
                    ASSERT_LE(begin, end);
                    ASSERT_LE(end, count);
                    for (size_t i = begin; i < end; ++i)
                        visits[i].fetch_add(1);
                },
                config);
            for (size_t i = 0; i < count; ++i)
                ASSERT_EQ(visits[i].load(), 1)
                    << "index " << i << " at " << threads << " threads, "
                    << "chunk " << chunk;
        }
    }
}

TEST(Parallel, ZeroCountIsANoop)
{
    bool called = false;
    parallelFor(0, [&](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Parallel, ChunkDecompositionIgnoresThreadCount)
{
    // resolveChunk depends on count and the explicit setting only.
    ParallelConfig one;
    one.threads = 1;
    ParallelConfig eight;
    eight.threads = 8;
    EXPECT_EQ(resolveChunk(one, 1000), resolveChunk(eight, 1000));
    EXPECT_EQ(resolveChunk(one, 10), 1u);
    one.chunk = 42;
    EXPECT_EQ(resolveChunk(one, 1000), 42u);
}

TEST(Parallel, EnvOverrideResolvesThreads)
{
    setenv("RELAXFAULT_THREADS", "3", 1);
    ParallelConfig config;
    EXPECT_EQ(resolveThreads(config), 3u);
    config.threads = 5;  // Explicit setting beats the environment.
    EXPECT_EQ(resolveThreads(config), 5u);
    unsetenv("RELAXFAULT_THREADS");
    config.threads = 0;
    EXPECT_GE(resolveThreads(config), 1u);
}

TEST(Parallel, ExceptionPropagatesToCaller)
{
    for (const unsigned threads : {1u, 4u}) {
        ParallelConfig config;
        config.threads = threads;
        config.chunk = 1;
        EXPECT_THROW(
            parallelFor(
                64,
                [](size_t begin, size_t) {
                    if (begin == 13)
                        throw std::runtime_error("boom");
                },
                config),
            std::runtime_error);
    }
}

TEST(Histogram, CumulativeAndOverflow)
{
    Histogram hist(10.0, 5);  // Bins cover [0, 50).
    hist.add(5.0);
    hist.add(15.0, 2.0);
    hist.add(49.9);
    hist.add(100.0);  // Overflow.
    EXPECT_DOUBLE_EQ(hist.totalWeight(), 5.0);
    EXPECT_DOUBLE_EQ(hist.overflowWeight(), 1.0);
    EXPECT_DOUBLE_EQ(hist.cumulativeWeightUpTo(10.0), 1.0);
    EXPECT_DOUBLE_EQ(hist.cumulativeWeightUpTo(20.0), 3.0);
    EXPECT_DOUBLE_EQ(hist.cumulativeWeightUpTo(50.0), 4.0);
}

TEST(Histogram, NegativeClampsToFirstBin)
{
    Histogram hist(1.0, 4);
    hist.add(-3.0);
    EXPECT_DOUBLE_EQ(hist.binWeight(0), 1.0);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "2.50"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TextTable, NumFormat)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(uint64_t{42}), "42");
}

TEST(Cli, ParsesForms)
{
    // Note: a bare flag followed by a non-option token would swallow it
    // as a value, so bare flags go last (documented parser behaviour).
    const char *argv[] = {"prog", "--trials=50", "--seed", "7",
                          "positional", "--flag"};
    CliOptions options(6, const_cast<char **>(argv));
    EXPECT_EQ(options.getInt("trials", 0), 50);
    EXPECT_EQ(options.getInt("seed", 0), 7);
    EXPECT_TRUE(options.has("flag"));
    EXPECT_FALSE(options.has("absent"));
    EXPECT_EQ(options.getDouble("absent", 2.5), 2.5);
    ASSERT_EQ(options.positional().size(), 1u);
    EXPECT_EQ(options.positional()[0], "positional");
}

TEST(Cli, StrictAcceptsKnownOptions)
{
    const char *argv[] = {"prog", "--trials=50", "--progress"};
    CliOptions options(3, const_cast<char **>(argv),
                       {"trials", "progress"});
    EXPECT_EQ(options.getInt("trials", 0), 50);
    EXPECT_TRUE(options.has("progress"));
}

TEST(CliDeathTest, StrictRejectsUnknownOption)
{
    const char *argv[] = {"prog", "--trails=50"};  // Typo.
    EXPECT_EXIT(CliOptions(2, const_cast<char **>(argv), {"trials"}),
                ::testing::ExitedWithCode(1), "unknown option --trails");
}

TEST(CliDeathTest, RejectsMalformedNumbers)
{
    const char *argv[] = {"prog", "--trials=5x", "--scale=abc"};
    CliOptions options(3, const_cast<char **>(argv),
                       {"trials", "scale"});
    EXPECT_EXIT(options.getInt("trials", 0),
                ::testing::ExitedWithCode(1), "is not an integer");
    EXPECT_EXIT(options.getDouble("scale", 0.0),
                ::testing::ExitedWithCode(1), "is not a number");
}

TEST(CliDeathTest, ValidatesRanges)
{
    const char *argv[] = {"prog", "--trials=0", "--threads=-2"};
    CliOptions options(3, const_cast<char **>(argv),
                       {"trials", "threads"});
    EXPECT_EQ(options.getNonNegativeInt("trials", 1), 0);
    EXPECT_EXIT(options.getPositiveInt("trials", 1),
                ::testing::ExitedWithCode(1), "must be >= 1");
    EXPECT_EXIT(options.getNonNegativeInt("threads", 0),
                ::testing::ExitedWithCode(1), "must be >= 0");
}

TEST(Histogram, MergeOfShardsMatchesSinglePassFill)
{
    // Property: splitting an observation stream across shards and
    // merging reproduces the single-pass histogram exactly (the
    // telemetry sharding contract).
    Rng rng(99);
    Histogram single(2.5, 40);
    std::vector<Histogram> shards(4, Histogram(2.5, 40));
    for (unsigned i = 0; i < 4000; ++i) {
        const double value = rng.uniform() * 120.0;  // Overflows too.
        // Small-integer weights keep double addition exact, so the
        // merged and single-pass histograms must match bit for bit.
        const double weight = 1.0 + static_cast<double>(i % 3);
        single.add(value, weight);
        shards[i % 4].add(value, weight);
    }
    Histogram merged(2.5, 40);
    for (const auto &shard : shards)
        merged.merge(shard);
    EXPECT_DOUBLE_EQ(merged.totalWeight(), single.totalWeight());
    EXPECT_DOUBLE_EQ(merged.overflowWeight(), single.overflowWeight());
    for (size_t b = 0; b < single.binCount(); ++b)
        EXPECT_DOUBLE_EQ(merged.binWeight(b), single.binWeight(b)) << b;
    for (const double p : {0.1, 0.5, 0.9, 0.999})
        EXPECT_DOUBLE_EQ(merged.quantile(p), single.quantile(p)) << p;
}

TEST(Histogram, QuantileWalksBins)
{
    Histogram hist(10.0, 5);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);  // Empty.
    hist.add(5.0);    // Bin 0, upper edge 10.
    hist.add(25.0);   // Bin 2, upper edge 30.
    hist.add(35.0);   // Bin 3, upper edge 40.
    hist.add(45.0);   // Bin 4, upper edge 50.
    EXPECT_DOUBLE_EQ(hist.quantile(0.25), 10.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 30.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 50.0);
    hist.add(1000.0);  // Overflow: quantile saturates at the last edge.
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 50.0);
}

TEST(HistogramDeathTest, MergeRejectsIncompatibleBinning)
{
    Histogram a(1.0, 4);
    const Histogram b(2.0, 4);
    EXPECT_DEATH(a.merge(b), "incompatible binning");
}

TEST(ProgressMeter, ConcurrentTicksCountExactly)
{
    ProgressMeter meter("test", 10000, false);
    ParallelConfig config;
    config.threads = 8;
    config.chunk = 1;
    parallelFor(
        100,
        [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                meter.tick(100);
        },
        config);
    EXPECT_EQ(meter.done(), 10000u);
}

TEST(ProgressMeter, DisabledNeverPrints)
{
    testing::internal::CaptureStderr();
    ProgressMeter meter("silent", 10, false);
    for (unsigned i = 0; i < 10; ++i)
        meter.tick();
    meter.finish();
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Fs, AtomicWriteThenReadRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "relaxfault_fs_test.txt";
    std::remove(path.c_str());
    EXPECT_FALSE(fileExists(path));

    const std::string content = "line one\nline two\n\x01 binary \xff\n";
    ASSERT_TRUE(atomicWriteFile(path, content));
    EXPECT_TRUE(fileExists(path));
    std::string read_back;
    ASSERT_TRUE(readFile(path, read_back));
    EXPECT_EQ(read_back, content);

    // Overwrite replaces the whole content (no append, no mixing).
    ASSERT_TRUE(atomicWriteFile(path, "replaced"));
    ASSERT_TRUE(readFile(path, read_back));
    EXPECT_EQ(read_back, "replaced");
    std::remove(path.c_str());
}

TEST(Fs, AtomicWriteToBadDirectoryFailsCleanly)
{
    EXPECT_FALSE(
        atomicWriteFile("/nonexistent_dir_xyz/file.txt", "data"));
    std::string out;
    EXPECT_FALSE(readFile("/nonexistent_dir_xyz/file.txt", out));
}

TEST(Fs, SplitLinesDropsTerminatorsAndTrailingEmpty)
{
    const auto lines = splitLines("a\nbb\n\nccc\n");
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], "a");
    EXPECT_EQ(lines[1], "bb");
    EXPECT_EQ(lines[2], "");
    EXPECT_EQ(lines[3], "ccc");
    // A torn final line (no terminator) is still returned — the caller
    // decides whether it parses.
    const auto torn = splitLines("a\npartial");
    ASSERT_EQ(torn.size(), 2u);
    EXPECT_EQ(torn[1], "partial");
    EXPECT_TRUE(splitLines("").empty());
}

TEST(SignalGuardTest, SigintSetsFlagWithoutKilling)
{
    SignalGuard guard;
    SignalGuard::reset();
    EXPECT_FALSE(SignalGuard::stopRequested());
    // One SIGINT is absorbed into the flag (a second would re-raise
    // with default disposition — deliberately not tested in-process).
    ASSERT_EQ(std::raise(SIGINT), 0);
    EXPECT_TRUE(SignalGuard::stopRequested());
    EXPECT_EQ(SignalGuard::stopSignal(), SIGINT);
    SignalGuard::reset();
    EXPECT_FALSE(SignalGuard::stopRequested());
}

TEST(SignalGuardTest, RequestStopIsProgrammatic)
{
    SignalGuard::reset();
    SignalGuard::requestStop();
    EXPECT_TRUE(SignalGuard::stopRequested());
    EXPECT_EQ(SignalGuard::stopSignal(), 0);
    SignalGuard::reset();
}

TEST(ProgressMeter, FinishIsIdempotent)
{
    testing::internal::CaptureStderr();
    ProgressMeter meter("done", 3, true);
    meter.tick(3);
    meter.finish();
    meter.finish();
    meter.finish();
    const std::string output = testing::internal::GetCapturedStderr();
    // Exactly one final summary line despite three finish() calls.
    size_t lines = 0;
    for (const char c : output)
        lines += c == '\n';
    EXPECT_EQ(lines, 1u) << output;
    EXPECT_NE(output.find("done"), std::string::npos);
}

TEST(Clock, FakeClockAdvancesVirtuallyAndRecordsSleeps)
{
    FakeClock clock;
    const Clock::TimePoint start = clock.now();
    clock.sleepFor(std::chrono::milliseconds(25));
    clock.advance(std::chrono::milliseconds(10));
    clock.sleepFor(std::chrono::milliseconds(40));
    EXPECT_EQ(clock.elapsedMs(start), 75u);
    ASSERT_EQ(clock.sleeps().size(), 2u);
    EXPECT_EQ(clock.sleeps()[0], std::chrono::milliseconds(25));
    EXPECT_EQ(clock.sleeps()[1], std::chrono::milliseconds(40));
}

TEST(Clock, SteadyClockIsMonotonic)
{
    Clock &clock = Clock::steady();
    const Clock::TimePoint a = clock.now();
    const Clock::TimePoint b = clock.now();
    EXPECT_LE(a, b);
}

} // namespace
} // namespace relaxfault
