/**
 * @file
 * End-to-end tests of the RelaxFaultController datapath: data integrity
 * through injected faults, repair + ECC interplay, remap coherence under
 * writes, the faulty-bank filter, and the Table 1 storage accounting.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "core/relaxfault_controller.h"

namespace relaxfault {
namespace {

FaultRecord
makeFault(FaultRegion region, unsigned dimm = 0, unsigned device = 0)
{
    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    fault.parts.push_back({dimm, device, std::move(region)});
    return fault;
}

FaultRegion
rowRegion(unsigned bank, uint32_t row)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

FaultRegion
sliceRegion(unsigned bank, uint32_t row, uint16_t col, uint32_t mask)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::of({col});
    cluster.bitMask = mask;
    return FaultRegion({cluster});
}

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest() : controller_(ControllerConfig{}) {}

    /** Physical address of (channel, rank, bank, row, colBlock). */
    uint64_t
    pa(unsigned channel, unsigned rank, unsigned bank, uint32_t row,
       uint16_t col)
    {
        LineCoord coord{channel, rank, bank, row, col};
        return controller_.addressMap().encode(coord);
    }

    void
    fillPattern(uint8_t *data, uint64_t seed)
    {
        Rng rng(seed);
        for (unsigned i = 0; i < 64; ++i)
            data[i] = static_cast<uint8_t>(rng.uniformInt(256));
    }

    RelaxFaultController controller_;
};

TEST_F(ControllerTest, CleanRoundTrip)
{
    uint8_t data[64];
    uint8_t out[64];
    fillPattern(data, 1);
    const uint64_t address = pa(0, 0, 0, 10, 20);
    controller_.write(address, data);
    EXPECT_EQ(controller_.read(address, out), EccStatus::Ok);
    EXPECT_EQ(std::memcmp(data, out, 64), 0);
    EXPECT_EQ(controller_.stats().reads, 1u);
    EXPECT_EQ(controller_.stats().writes, 1u);
}

TEST_F(ControllerTest, UnwrittenReadsZero)
{
    uint8_t out[64];
    std::memset(out, 0xff, 64);
    EXPECT_EQ(controller_.read(pa(1, 0, 2, 3, 4), out), EccStatus::Ok);
    for (unsigned i = 0; i < 64; ++i)
        ASSERT_EQ(out[i], 0);
}

TEST_F(ControllerTest, SingleDeviceFaultCorrectedByEccAlone)
{
    // A fault that is NOT repaired (we inject but nothing needs repair
    // budget... use a fresh controller with a zero budget).
    ControllerConfig config;
    config.budget = RepairBudget{0, 0};  // Repair impossible.
    RelaxFaultController controller(config);

    uint8_t data[64];
    fillPattern(data, 2);
    LineCoord coord{0, 0, 1, 100, 7};
    const uint64_t address = controller.addressMap().encode(coord);
    controller.write(address, data);

    EXPECT_FALSE(controller.reportFault(
        makeFault(sliceRegion(1, 100, 7, 0x0000000f), 0, 5)));

    uint8_t out[64];
    // Chipkill corrects the single faulty device.
    EXPECT_EQ(controller.read(address, out), EccStatus::Corrected);
    EXPECT_EQ(std::memcmp(data, out, 64), 0);
    EXPECT_GT(controller.stats().correctedReads, 0u);
}

TEST_F(ControllerTest, RepairedRowFaultReadsCleanly)
{
    // Write data across a full faulty device row, report + repair the
    // fault, and verify every line reads back intact with no ECC work.
    const unsigned bank = 3;
    const uint32_t row = 777;
    std::vector<std::array<uint8_t, 64>> lines(32);
    for (unsigned c = 0; c < 32; ++c) {
        fillPattern(lines[c].data(), 100 + c);
        controller_.write(pa(0, 0, bank, row, static_cast<uint16_t>(c)),
                          lines[c].data());
    }

    EXPECT_TRUE(controller_.reportFault(
        makeFault(rowRegion(bank, row), 0, 9)));
    EXPECT_TRUE(controller_.repair().bankFlagged(0, bank));

    for (unsigned c = 0; c < 32; ++c) {
        uint8_t out[64];
        const EccStatus status = controller_.read(
            pa(0, 0, bank, row, static_cast<uint16_t>(c)), out);
        // Remap merge replaces the faulty device before decode: clean.
        EXPECT_EQ(status, EccStatus::Ok);
        EXPECT_EQ(std::memcmp(lines[c].data(), out, 64), 0);
    }
    EXPECT_GT(controller_.stats().remapMerges, 0u);
    EXPECT_GT(controller_.stats().remapFills, 0u);
}

TEST_F(ControllerTest, WritesAfterRepairStayCoherent)
{
    const unsigned bank = 2;
    const uint32_t row = 555;
    uint8_t data[64];
    fillPattern(data, 7);
    const uint64_t address = pa(0, 0, bank, row, 4);
    controller_.write(address, data);

    ASSERT_TRUE(controller_.reportFault(
        makeFault(rowRegion(bank, row), 0, 4)));

    // Overwrite after repair: the remap store must track the new data.
    uint8_t new_data[64];
    fillPattern(new_data, 8);
    controller_.write(address, new_data);
    uint8_t out[64];
    EXPECT_EQ(controller_.read(address, out), EccStatus::Ok);
    EXPECT_EQ(std::memcmp(new_data, out, 64), 0);

    // And again, multiple overwrites.
    fillPattern(new_data, 9);
    controller_.write(address, new_data);
    EXPECT_EQ(controller_.read(address, out), EccStatus::Ok);
    EXPECT_EQ(std::memcmp(new_data, out, 64), 0);
}

TEST_F(ControllerTest, TwoFaultyDevicesOneRepairedStillCorrects)
{
    const unsigned bank = 1;
    const uint32_t row = 1234;
    uint8_t data[64];
    fillPattern(data, 11);
    const uint64_t address = pa(0, 0, bank, row, 10);
    controller_.write(address, data);

    // Device 3's whole row is repaired; device 7 has an unrepairable...
    // actually just unreported-late bit fault: ECC handles it.
    ASSERT_TRUE(controller_.reportFault(
        makeFault(rowRegion(bank, row), 0, 3)));
    ASSERT_TRUE(controller_.reportFault(
        makeFault(sliceRegion(bank, row, 10, 0xf0), 0, 7)));

    uint8_t out[64];
    const EccStatus status = controller_.read(address, out);
    EXPECT_NE(status, EccStatus::Uncorrectable);
    EXPECT_EQ(std::memcmp(data, out, 64), 0);
}

TEST_F(ControllerTest, TwoUnrepairedOverlappingFaultsAreDue)
{
    ControllerConfig config;
    config.budget = RepairBudget{0, 0};
    RelaxFaultController controller(config);

    uint8_t data[64];
    fillPattern(data, 13);
    LineCoord coord{0, 0, 0, 42, 5};
    const uint64_t address = controller.addressMap().encode(coord);
    controller.write(address, data);

    // Two devices stuck in the same beat pair (symbol) of the line.
    controller.reportFault(
        makeFault(sliceRegion(0, 42, 5, 0x000000ff), 0, 2));
    controller.reportFault(
        makeFault(sliceRegion(0, 42, 5, 0x000000ff), 0, 6));

    uint8_t out[64];
    const EccStatus status = controller.read(address, out);
    // Double-symbol error: detected (or, rarely, miscorrected — the
    // codec's documented ~7% aliasing). It must not read back clean
    // via silent luck, unless the stuck values happen to match data.
    if (status == EccStatus::Uncorrectable)
        SUCCEED();
    else
        EXPECT_GT(controller.stats().uncorrectableReads +
                      controller.stats().correctedReads,
                  0u);
}

TEST_F(ControllerTest, TransientFaultNeedsNoRepair)
{
    FaultRecord transient;
    transient.persistence = Persistence::Transient;
    transient.parts.push_back({0, 1, sliceRegion(0, 1, 1, 0x1)});
    EXPECT_TRUE(controller_.reportFault(transient));
    EXPECT_EQ(controller_.repair().usedLines(), 0u);
}

TEST_F(ControllerTest, BankFilterSkipsHealthyBanks)
{
    uint8_t data[64] = {1};
    controller_.write(pa(0, 0, 0, 1, 1), data);
    ASSERT_TRUE(
        controller_.reportFault(makeFault(rowRegion(5, 99), 0, 0)));
    uint8_t out[64];
    controller_.read(pa(0, 0, 0, 1, 1), out);  // Bank 0: not flagged.
    EXPECT_EQ(controller_.stats().bankFilterHits, 0u);
    controller_.read(pa(0, 0, 5, 99, 0), out);  // Bank 5: flagged.
    EXPECT_EQ(controller_.stats().bankFilterHits, 1u);
}

TEST_F(ControllerTest, StorageOverheadMatchesTable1)
{
    const StorageOverhead overhead =
        RelaxFaultController::storageOverhead(ControllerConfig{});
    EXPECT_EQ(overhead.faultyBankTableBytes, 8u);
    EXPECT_EQ(overhead.coalescerBytes, 128u);
    EXPECT_EQ(overhead.llcTagExtensionBytes, 16384u);
    EXPECT_EQ(overhead.totalBytes(), 16520u);
}

TEST_F(ControllerTest, StorageOverheadScalesWithLlc)
{
    ControllerConfig config;
    config.llc.sizeBytes = 16 * 1024 * 1024;
    const StorageOverhead overhead =
        RelaxFaultController::storageOverhead(config);
    EXPECT_EQ(overhead.llcTagExtensionBytes, 32768u);
}

TEST(ControllerProperty, RandomTrafficOverRepairedFaultsStaysIntact)
{
    // Property test: interleave writes/reads over a region containing
    // several repaired faults; every read must return the last write.
    RelaxFaultController controller{ControllerConfig{}};
    Rng rng(2016);

    const unsigned bank = 4;
    std::vector<FaultRecord> faults;
    faults.push_back(makeFault(rowRegion(bank, 100), 0, 1));
    faults.push_back(makeFault(sliceRegion(bank, 101, 3, 0xffff), 0, 2));
    faults.push_back(makeFault(rowRegion(bank, 102), 0, 17));  // Check dev.
    for (const auto &fault : faults)
        ASSERT_TRUE(controller.reportFault(fault));

    std::unordered_map<uint64_t, std::array<uint8_t, 64>> shadow;
    for (int op = 0; op < 4000; ++op) {
        LineCoord coord;
        coord.bank = bank;
        coord.row = 100 + static_cast<uint32_t>(rng.uniformInt(3));
        coord.colBlock = static_cast<unsigned>(rng.uniformInt(32));
        const uint64_t address = controller.addressMap().encode(coord);
        if (rng.bernoulli(0.5) || !shadow.count(address)) {
            std::array<uint8_t, 64> data;
            for (auto &byte : data)
                byte = static_cast<uint8_t>(rng.uniformInt(256));
            controller.write(address, data.data());
            shadow[address] = data;
        } else {
            uint8_t out[64];
            const EccStatus status = controller.read(address, out);
            ASSERT_NE(status, EccStatus::Uncorrectable);
            ASSERT_EQ(std::memcmp(out, shadow[address].data(), 64), 0);
        }
    }
}


TEST(ControllerErasure, TwoKnownFaultyDevicesSurviveWithErasureMode)
{
    // Extension: with erasure decoding on, two tracked-but-unrepaired
    // faulty devices in the same symbol no longer produce a DUE.
    ControllerConfig config;
    config.budget = RepairBudget{0, 0};  // Force both to stay unrepaired.
    config.erasureDecoding = true;
    RelaxFaultController controller(config);

    uint8_t data[64];
    Rng rng(31);
    for (auto &byte : data)
        byte = static_cast<uint8_t>(rng.uniformInt(256));
    LineCoord coord{0, 0, 0, 42, 5};
    const uint64_t address = controller.addressMap().encode(coord);
    controller.write(address, data);

    for (unsigned device : {2u, 6u}) {
        FaultRecord fault;
        fault.persistence = Persistence::Permanent;
        fault.parts.push_back(
            {0, device, sliceRegion(0, 42, 5, 0x000000ff)});
        controller.reportFault(fault);
    }

    uint8_t out[64];
    const EccStatus status = controller.read(address, out);
    EXPECT_EQ(status, EccStatus::Corrected);
    EXPECT_EQ(std::memcmp(data, out, 64), 0);
    EXPECT_GT(controller.stats().erasureDecodes, 0u);

    // A third faulty device exceeds even erasure decoding.
    FaultRecord third;
    third.persistence = Persistence::Permanent;
    third.parts.push_back({0, 11, sliceRegion(0, 42, 5, 0x000000ff)});
    controller.reportFault(third);
    EXPECT_EQ(controller.read(address, out), EccStatus::Uncorrectable);
}

TEST(ControllerErasure, RepairedFaultsAreNotErasures)
{
    // Once repaired, a device's data comes from the LLC; it must no
    // longer burn an erasure slot.
    ControllerConfig config;
    config.budget = RepairBudget{4, 32768};
    config.erasureDecoding = true;
    RelaxFaultController controller(config);

    uint8_t data[64] = {9, 8, 7};
    LineCoord coord{0, 0, 1, 10, 2};
    const uint64_t address = controller.addressMap().encode(coord);
    controller.write(address, data);

    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    fault.parts.push_back({0, 3, rowRegion(1, 10)});
    ASSERT_TRUE(controller.reportFault(fault));

    uint8_t out[64];
    EXPECT_EQ(controller.read(address, out), EccStatus::Ok);
    EXPECT_EQ(controller.stats().erasureDecodes, 0u);
}

} // namespace
} // namespace relaxfault
