/**
 * @file
 * Budget-exhaustion and graceful-degradation tests: every repair
 * mechanism past its documented ceiling fails cleanly (all-or-nothing,
 * state untouched), and the controller's degradation policy turns an
 * uncovered fault into the configured, observable outcome — page
 * retirement, DUE accounting, or fail-stop.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/relaxfault_controller.h"
#include "repair/degradation.h"
#include "repair/device_sparing.h"
#include "repair/freefault_repair.h"
#include "repair/ppr_repair.h"
#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"
#include "telemetry/metrics.h"

namespace relaxfault {
namespace {

DramGeometry
geom()
{
    return DramGeometry{};
}

CacheGeometry
llc()
{
    return CacheGeometry{8 * 1024 * 1024, 16, 64};
}

FaultRecord
makeFault(FaultRegion region, unsigned dimm = 0, unsigned device = 0)
{
    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    fault.parts.push_back({dimm, device, std::move(region)});
    return fault;
}

FaultRegion
rowRegion(unsigned bank, uint32_t row)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

FaultRegion
bitRegion(unsigned bank, uint32_t row, uint16_t col)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::of({col});
    cluster.bitMask = 1;
    return FaultRegion({cluster});
}

// ---------------------------------------------------------------------
// Policy flag spelling.

TEST(DegradationPolicy, NamesRoundTrip)
{
    for (const DegradationPolicy policy :
         {DegradationPolicy::RetirePages, DegradationPolicy::CountDue,
          DegradationPolicy::FailStop}) {
        const auto parsed =
            parseDegradationPolicy(degradationPolicyName(policy));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parseDegradationPolicy("").has_value());
    EXPECT_FALSE(parseDegradationPolicy("panic").has_value());
}

// ---------------------------------------------------------------------
// Each mechanism past its budget: fail cleanly, state untouched.

TEST(BudgetExhaustion, RelaxFaultCapacityCeiling)
{
    // A device row needs 16 coalesced lines; a 4-line budget cannot
    // hold it, and the failed attempt must not leak partial locks.
    RelaxFaultRepair repair(geom(), llc(), RepairBudget{4, 4});
    EXPECT_FALSE(repair.tryRepair(makeFault(rowRegion(1, 500), 0, 6)));
    EXPECT_EQ(repair.usedLines(), 0u);

    // A single-bit fault still fits; only the over-budget fault fails.
    EXPECT_TRUE(repair.tryRepair(makeFault(bitRegion(2, 9, 3), 0, 2)));
    const uint64_t lines = repair.usedLines();
    EXPECT_FALSE(repair.tryRepair(makeFault(rowRegion(3, 800), 0, 7)));
    EXPECT_EQ(repair.usedLines(), lines);
}

TEST(BudgetExhaustion, RelaxFaultWayCeiling)
{
    // maxWaysPerSet=1 with ample capacity: pile remap units into the
    // same set until the way bound, not the capacity bound, refuses.
    RelaxFaultRepair repair(geom(), llc(), RepairBudget{1, 32768});
    unsigned repaired = 0;
    unsigned refused = 0;
    for (unsigned device = 0; device < 18 && refused == 0; ++device) {
        // Same bank/row on every device: the coalesced keys differ only
        // in the device field, which lands some pairs in one set.
        if (repair.tryRepair(makeFault(rowRegion(1, 500), 0, device)))
            ++repaired;
        else
            ++refused;
    }
    EXPECT_GT(repaired, 0u);
    EXPECT_LE(repair.maxWaysUsed(), 1u);
}

TEST(BudgetExhaustion, FreeFaultCapacityCeiling)
{
    // FreeFault locks one whole line per 64B block: a full device row
    // far exceeds a small line budget.
    const DramAddressMap map(geom());
    FreeFaultRepair repair(map, llc(), RepairBudget{4, 8});
    EXPECT_FALSE(repair.tryRepair(makeFault(rowRegion(1, 500), 0, 6)));
    EXPECT_EQ(repair.usedLines(), 0u);

    EXPECT_TRUE(repair.tryRepair(makeFault(bitRegion(2, 9, 3), 0, 2)));
    EXPECT_GT(repair.usedLines(), 0u);
}

TEST(BudgetExhaustion, PprSpareRowsPerBankGroup)
{
    // DDR4 PPR: one spare row per bank group per device. Two faulty
    // rows in the same bank exhaust the group's spare.
    PprRepair repair(geom(), 4, 1);
    EXPECT_TRUE(repair.tryRepair(makeFault(rowRegion(1, 500), 0, 6)));
    const uint64_t spares = repair.sparesUsed();
    EXPECT_GT(spares, 0u);
    EXPECT_FALSE(repair.tryRepair(makeFault(rowRegion(1, 501), 0, 6)));
    EXPECT_EQ(repair.sparesUsed(), spares);

    // A different bank group still has its spare.
    EXPECT_TRUE(repair.tryRepair(makeFault(rowRegion(4, 500), 0, 6)));
}

TEST(BudgetExhaustion, DeviceSparingOnePerRank)
{
    // One redundant device per rank: the second faulty device in the
    // same rank cannot be steered.
    DeviceSparing repair(geom(), 1);
    EXPECT_TRUE(repair.tryRepair(makeFault(rowRegion(1, 500), 0, 6)));
    EXPECT_EQ(repair.sparedDevices(), 1u);
    EXPECT_EQ(repair.degradedRanks(), 1u);

    EXPECT_FALSE(repair.tryRepair(makeFault(rowRegion(2, 900), 0, 9)));
    EXPECT_EQ(repair.sparedDevices(), 1u);

    // Another rank (other DIMM) is unaffected.
    EXPECT_TRUE(repair.tryRepair(makeFault(rowRegion(1, 500), 1, 6)));
}

// ---------------------------------------------------------------------
// Controller degradation policies.

ControllerConfig
tinyBudgetConfig(DegradationPolicy policy)
{
    ControllerConfig config;
    config.budget = RepairBudget{1, 0};  // Nothing is repairable.
    config.degradation = policy;
    return config;
}

TEST(ControllerDegradation, CountDueLeavesFaultExposedAndCounted)
{
    RelaxFaultController controller(
        tinyBudgetConfig(DegradationPolicy::CountDue));
    EXPECT_FALSE(
        controller.reportFault(makeFault(bitRegion(1, 500, 3), 0, 6)));

    EXPECT_EQ(controller.stats().budgetExhausted, 1u);
    EXPECT_EQ(controller.stats().degradedDues, 1u);
    EXPECT_EQ(controller.stats().degradedToRetirement, 0u);
    EXPECT_EQ(controller.stats().failStops, 0u);
    EXPECT_FALSE(controller.failedStop());
    EXPECT_EQ(controller.retirement(), nullptr);
    // The fault is tracked but unrepaired.
    ASSERT_EQ(controller.faults().faults().size(), 1u);
    EXPECT_FALSE(controller.faults().repaired(0));
}

TEST(ControllerDegradation, RetirePagesAbsorbsTheFault)
{
    RelaxFaultController controller(
        tinyBudgetConfig(DegradationPolicy::RetirePages));
    EXPECT_FALSE(
        controller.reportFault(makeFault(bitRegion(1, 500, 3), 0, 6)));

    EXPECT_EQ(controller.stats().budgetExhausted, 1u);
    EXPECT_EQ(controller.stats().degradedToRetirement, 1u);
    EXPECT_EQ(controller.stats().degradedDues, 0u);
    ASSERT_NE(controller.retirement(), nullptr);
    EXPECT_GT(controller.retirement()->retiredPages(), 0u);
}

TEST(ControllerDegradation, RetirePagesFallsThroughToDueAtItsOwnCap)
{
    // Retirement has its own capacity cap: a fault too large even for
    // the fallback lands in the DUE accounting.
    ControllerConfig config = tinyBudgetConfig(DegradationPolicy::RetirePages);
    config.retireMaxBytes = 4096;  // One frame.
    RelaxFaultController controller(config);
    EXPECT_FALSE(
        controller.reportFault(makeFault(rowRegion(1, 500), 0, 6)));
    EXPECT_EQ(controller.stats().budgetExhausted, 1u);
    EXPECT_EQ(controller.stats().degradedToRetirement, 0u);
    EXPECT_EQ(controller.stats().degradedDues, 1u);
}

TEST(ControllerDegradation, FailStopHaltsTheDatapath)
{
    RelaxFaultController controller(
        tinyBudgetConfig(DegradationPolicy::FailStop));

    // Write good data while healthy.
    uint8_t data[64];
    for (unsigned i = 0; i < 64; ++i)
        data[i] = static_cast<uint8_t>(i + 1);
    const uint64_t pa =
        controller.addressMap().encode(LineCoord{0, 0, 4, 900, 3});
    controller.write(pa, data);

    EXPECT_FALSE(
        controller.reportFault(makeFault(bitRegion(1, 500, 3), 0, 6)));
    EXPECT_TRUE(controller.failedStop());
    EXPECT_EQ(controller.stats().failStops, 1u);

    // Down means down: reads are DUEs, writes are dropped, further
    // fault reports are refused — and the transition count stays 1.
    uint8_t out[64];
    std::memset(out, 0xee, sizeof(out));
    EXPECT_EQ(controller.read(pa, out), EccStatus::Uncorrectable);
    const uint64_t dues = controller.stats().uncorrectableReads;
    EXPECT_GT(dues, 0u);
    controller.write(pa, data);
    EXPECT_FALSE(
        controller.reportFault(makeFault(bitRegion(2, 600, 4), 0, 7)));
    EXPECT_EQ(controller.stats().failStops, 1u);
}

// ---------------------------------------------------------------------
// Lifetime-simulation integration: policies surface in the metrics.

LifetimeConfig
exhaustedLifetimeConfig(DegradationPolicy policy)
{
    LifetimeConfig config;
    config.nodesPerSystem = 128;
    config.faultModel.fitScale = 10.0;
    config.degradation = policy;
    return config;
}

LifetimeSimulator::MechanismFactory
starvedFactory()
{
    // A 2-line budget: any row/column-scale fault exhausts it.
    return []() -> std::unique_ptr<RepairMechanism> {
        return std::make_unique<RelaxFaultRepair>(geom(), llc(),
                                                  RepairBudget{1, 2});
    };
}

TEST(LifetimeDegradation, CountDueReportsExhaustionOnly)
{
    const LifetimeSimulator simulator(
        exhaustedLifetimeConfig(DegradationPolicy::CountDue));
    const LifetimeSummary summary =
        simulator.runTrials(4, starvedFactory(), 99, {});
    EXPECT_GT(summary.budgetExhausted.sum(), 0.0);
    EXPECT_GT(summary.degradedDues.sum(), 0.0);
    EXPECT_EQ(summary.degradedToRetirement.sum(), 0.0);
    EXPECT_EQ(summary.failStops.sum(), 0.0);
}

TEST(LifetimeDegradation, RetirePagesAbsorbsSomeFaults)
{
    const LifetimeSimulator simulator(
        exhaustedLifetimeConfig(DegradationPolicy::RetirePages));
    const LifetimeSummary summary =
        simulator.runTrials(4, starvedFactory(), 99, {});
    EXPECT_GT(summary.budgetExhausted.sum(), 0.0);
    EXPECT_GT(summary.degradedToRetirement.sum(), 0.0);
    EXPECT_EQ(summary.failStops.sum(), 0.0);
}

TEST(LifetimeDegradation, FailStopStopsNodes)
{
    const LifetimeSimulator simulator(
        exhaustedLifetimeConfig(DegradationPolicy::FailStop));
    const LifetimeSummary summary =
        simulator.runTrials(4, starvedFactory(), 99, {});
    EXPECT_GT(summary.budgetExhausted.sum(), 0.0);
    EXPECT_GT(summary.failStops.sum(), 0.0);
    EXPECT_EQ(summary.degradedToRetirement.sum(), 0.0);
}

TEST(LifetimeDegradation, DefaultPolicyMatchesPrePolicyBehavior)
{
    // Under CountDue every original metric is computed exactly as
    // before the policy existed; the new fields are pure additions. A
    // well-budgeted mechanism never degrades at all.
    LifetimeConfig config;
    config.nodesPerSystem = 128;
    config.faultModel.fitScale = 10.0;
    const LifetimeSimulator simulator(config);
    const auto factory = []() -> std::unique_ptr<RepairMechanism> {
        return std::make_unique<RelaxFaultRepair>(
            geom(), llc(), RepairBudget{4, 32768});
    };
    const LifetimeSummary summary =
        simulator.runTrials(6, factory, 123, {});
    EXPECT_EQ(summary.degradedToRetirement.sum(), 0.0);
    EXPECT_EQ(summary.failStops.sum(), 0.0);
    EXPECT_GT(summary.permanentFaults.sum(), 0.0);
}

TEST(LifetimeDegradation, CountersReachTelemetry)
{
    const LifetimeSimulator simulator(
        exhaustedLifetimeConfig(DegradationPolicy::RetirePages));
    MetricRegistry metrics;
    TrialRunOptions options;
    options.parallel.threads = 1;
    options.metrics = &metrics;
    simulator.runTrials(4, starvedFactory(), 99, options);

    const MetricsSnapshot snapshot = metrics.snapshot();
    auto counter = [&](const std::string &name) {
        for (const auto &[key, value] : snapshot.counters) {
            if (key == name)
                return value;
        }
        return uint64_t{0};
    };
    EXPECT_GT(counter("repair.budget_exhausted"), 0u);
    EXPECT_GT(counter("repair.degraded_to_retirement"), 0u);
}

} // namespace
} // namespace relaxfault
