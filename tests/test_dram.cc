/**
 * @file
 * Tests for the DRAM substrate: geometry arithmetic, the Fig. 7a address
 * map (bijectivity, locality, bank permutation), the power model, and
 * the functional fault-overlaid DRAM array.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "dram/address_map.h"
#include "dram/functional_dram.h"
#include "dram/geometry.h"
#include "dram/power.h"

namespace relaxfault {
namespace {

TEST(Geometry, PaperDefaults)
{
    const DramGeometry geometry;
    EXPECT_EQ(geometry.dimmsPerNode(), 8u);
    EXPECT_EQ(geometry.devicesPerRank(), 18u);
    EXPECT_EQ(geometry.devicesPerNode(), 144u);
    EXPECT_EQ(geometry.bytesPerDevicePerLine(), 4u);
    EXPECT_EQ(geometry.deviceRowBytes(), 1024u);
    EXPECT_EQ(geometry.rankBytes(), 8ull << 30);   // 8GiB DIMMs.
    EXPECT_EQ(geometry.nodeBytes(), 64ull << 30);  // 64GiB node.
    EXPECT_EQ(geometry.paBits(), 36u);
    EXPECT_EQ(geometry.deviceBits(), 5u);
}

TEST(Geometry, DimmIndex)
{
    const DramGeometry geometry;
    LineCoord coord;
    coord.channel = 2;
    coord.rank = 1;
    EXPECT_EQ(coord.dimm(geometry), 5u);
}

class AddressMapBijection : public ::testing::TestWithParam<bool>
{
};

TEST_P(AddressMapBijection, RoundTripsRandomCoords)
{
    const DramGeometry geometry;
    const DramAddressMap map(geometry, GetParam());
    Rng rng(123);
    for (int i = 0; i < 20000; ++i) {
        LineCoord coord;
        coord.channel = static_cast<unsigned>(
            rng.uniformInt(geometry.channels));
        coord.rank = static_cast<unsigned>(
            rng.uniformInt(geometry.ranksPerChannel));
        coord.bank = static_cast<unsigned>(
            rng.uniformInt(geometry.banksPerDevice));
        coord.row = static_cast<uint32_t>(
            rng.uniformInt(geometry.rowsPerBank));
        coord.colBlock = static_cast<unsigned>(
            rng.uniformInt(geometry.colBlocksPerRow));
        const uint64_t pa = map.encode(coord);
        ASSERT_LT(pa, geometry.nodeBytes());
        EXPECT_EQ(map.decode(pa), coord);
    }
}

TEST_P(AddressMapBijection, RoundTripsRandomAddresses)
{
    const DramGeometry geometry;
    const DramAddressMap map(geometry, GetParam());
    Rng rng(321);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t pa =
            rng.uniformInt(geometry.nodeBytes() / 64) * 64;
        EXPECT_EQ(map.encode(map.decode(pa)), pa);
    }
}

INSTANTIATE_TEST_SUITE_P(HashModes, AddressMapBijection,
                         ::testing::Bool());

TEST(AddressMap, ConsecutiveLinesRotateChannels)
{
    const DramGeometry geometry;
    const DramAddressMap map(geometry, true);
    const LineCoord c0 = map.decode(0);
    const LineCoord c1 = map.decode(64);
    EXPECT_NE(c0.channel, c1.channel);
}

TEST(AddressMap, RowStaysOpenAcrossColumnStride)
{
    // Lines that differ only in low column bits must hit the same row.
    const DramGeometry geometry;
    const DramAddressMap map(geometry, true);
    const uint64_t channel_stride = 64 * geometry.channels;
    const LineCoord base = map.decode(0);
    for (unsigned i = 1; i < 32; ++i) {
        const LineCoord next = map.decode(i * channel_stride);
        EXPECT_EQ(next.row, base.row);
        EXPECT_EQ(next.bank, base.bank);
        EXPECT_EQ(next.rank, base.rank);
    }
}

TEST(AddressMap, BankPermutationSpreadsRowConflicts)
{
    // With the XOR permutation, addresses that differ only in low row
    // bits map to different physical banks (Zhang et al.).
    const DramGeometry geometry;
    const DramAddressMap hashed(geometry, true);
    LineCoord a = hashed.decode(0);
    // Flip a low row bit by re-encoding a modified coordinate and
    // checking the bank field moved in PA space.
    LineCoord b = a;
    b.row ^= 1;
    const uint64_t pa_a = hashed.encode(a);
    const uint64_t pa_b = hashed.encode(b);
    const LineCoord back_a = hashed.decode(pa_a);
    const LineCoord back_b = hashed.decode(pa_b);
    EXPECT_EQ(back_a.bank, a.bank);
    EXPECT_EQ(back_b.bank, b.bank);
}

TEST(AddressMap, NoHashKeepsBankFieldLiteral)
{
    const DramGeometry geometry;
    const DramAddressMap plain(geometry, false);
    LineCoord coord;
    coord.bank = 5;
    coord.row = 0x1234;
    const uint64_t pa = plain.encode(coord);
    EXPECT_EQ(plain.decode(pa).bank, 5u);
}

TEST(AddressMap, CoversWholeSpaceInjective)
{
    // Sampled injectivity: distinct coordinates produce distinct PAs.
    const DramGeometry geometry;
    const DramAddressMap map(geometry, true);
    Rng rng(55);
    std::vector<uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        LineCoord coord;
        coord.channel = static_cast<unsigned>(
            rng.uniformInt(geometry.channels));
        coord.rank = static_cast<unsigned>(
            rng.uniformInt(geometry.ranksPerChannel));
        coord.bank = static_cast<unsigned>(
            rng.uniformInt(geometry.banksPerDevice));
        coord.row = static_cast<uint32_t>(
            rng.uniformInt(geometry.rowsPerBank));
        coord.colBlock = static_cast<unsigned>(
            rng.uniformInt(geometry.colBlocksPerRow));
        seen.push_back(map.encode(coord));
    }
    std::sort(seen.begin(), seen.end());
    const auto dup = std::adjacent_find(seen.begin(), seen.end());
    // Random collisions of coordinates themselves are ~0 at this count.
    EXPECT_EQ(dup, seen.end());
}

TEST(DramTiming, DerivedLatencies)
{
    const DramTiming timing;
    EXPECT_EQ(timing.rowHitLatency(), timing.tCL + timing.tBURST);
    EXPECT_EQ(timing.rowMissLatency(),
              timing.tRCD + timing.tCL + timing.tBURST);
    EXPECT_GT(timing.rowConflictLatency(), timing.rowMissLatency());
}

TEST(PowerModel, EnergiesPositiveAndOrdered)
{
    const DramPowerModel model(DramPowerParams{}, DramTiming{}, 18);
    EXPECT_GT(model.activateEnergyNj(), 0.0);
    EXPECT_GT(model.readEnergyNj(), 0.0);
    EXPECT_GT(model.writeEnergyNj(), 0.0);
    // Writes burn slightly more than reads (IDD4W > IDD4R).
    EXPECT_GT(model.writeEnergyNj(), model.readEnergyNj());
}

TEST(PowerModel, DynamicPowerScalesWithOps)
{
    const DramPowerModel model(DramPowerParams{}, DramTiming{}, 18);
    DramOpCounts few{100, 1000, 500, 1'000'000};
    DramOpCounts many{200, 2000, 1000, 1'000'000};
    EXPECT_NEAR(model.dynamicPowerMw(many),
                2.0 * model.dynamicPowerMw(few), 1e-9);
}

TEST(PowerModel, ZeroCyclesZeroPower)
{
    const DramPowerModel model(DramPowerParams{}, DramTiming{}, 18);
    EXPECT_EQ(model.dynamicPowerMw(DramOpCounts{}), 0.0);
}

TEST(PowerModel, OpCountAccumulation)
{
    DramOpCounts a{1, 2, 3, 4};
    const DramOpCounts b{10, 20, 30, 40};
    a += b;
    EXPECT_EQ(a.activates, 11u);
    EXPECT_EQ(a.reads, 22u);
    EXPECT_EQ(a.writes, 33u);
    EXPECT_EQ(a.cycles, 44u);
}

class FunctionalDramTest : public ::testing::Test
{
  protected:
    DramGeometry geometry_;
    FunctionalDram dram_{geometry_};
};

TEST_F(FunctionalDramTest, UnwrittenLinesReadZero)
{
    uint8_t line[72];
    std::memset(line, 0xab, sizeof(line));
    dram_.readLine(LineCoord{}, line);
    for (unsigned i = 0; i < 72; ++i)
        ASSERT_EQ(line[i], 0);
}

TEST_F(FunctionalDramTest, WriteReadRoundTrip)
{
    EXPECT_EQ(dram_.storedLineBytes(), 72u);
    uint8_t data[72];
    for (unsigned i = 0; i < 72; ++i)
        data[i] = static_cast<uint8_t>(i * 3 + 1);
    LineCoord coord;
    coord.channel = 1;
    coord.bank = 3;
    coord.row = 1000;
    coord.colBlock = 17;
    dram_.writeLine(coord, data);
    uint8_t out[72];
    dram_.readLine(coord, out);
    EXPECT_EQ(std::memcmp(data, out, 72), 0);
    EXPECT_EQ(dram_.allocatedLines(), 1u);
}

TEST_F(FunctionalDramTest, FaultProbeCorruptsExactSlice)
{
    LineCoord coord;
    coord.bank = 2;
    coord.row = 42;
    coord.colBlock = 9;
    uint8_t data[72];
    std::memset(data, 0x00, sizeof(data));
    dram_.writeLine(coord, data);

    // Device 7 of DIMM 0 has bit 5 stuck at 1 in this slice.
    dram_.setFaultProbe([&](const DeviceCoord &dc) {
        StuckBits stuck;
        if (dc.dimm == 0 && dc.device == 7 && dc.bank == 2 &&
            dc.row == 42 && dc.colBlock == 9) {
            stuck.mask = 1u << 5;
            stuck.value = ~0u;
        }
        return stuck;
    });

    uint8_t out[72];
    dram_.readLine(coord, out);
    uint32_t slice;
    std::memcpy(&slice, out + 7 * 4, 4);
    EXPECT_EQ(slice, 1u << 5);
    // Every other byte untouched.
    for (unsigned i = 0; i < 72; ++i) {
        if (i / 4 == 7)
            continue;
        ASSERT_EQ(out[i], 0);
    }
    // Raw read bypasses the fault overlay.
    dram_.readLineRaw(coord, out);
    std::memcpy(&slice, out + 7 * 4, 4);
    EXPECT_EQ(slice, 0u);
}

TEST_F(FunctionalDramTest, StuckAtZeroForcesBitLow)
{
    LineCoord coord;
    uint8_t data[72];
    std::memset(data, 0xff, sizeof(data));
    dram_.writeLine(coord, data);
    dram_.setFaultProbe([](const DeviceCoord &dc) {
        StuckBits stuck;
        if (dc.device == 0) {
            stuck.mask = 0x3;
            stuck.value = 0x0;
        }
        return stuck;
    });
    uint8_t out[72];
    dram_.readLine(coord, out);
    EXPECT_EQ(out[0] & 0x3, 0);
    EXPECT_EQ(out[0] & 0xfc, 0xfc);
}

} // namespace
} // namespace relaxfault
