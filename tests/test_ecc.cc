/**
 * @file
 * Tests for GF(2^8) arithmetic and the chipkill RS(18,16) codec:
 * single-symbol correction at every position, double-error behaviour
 * (detected or measurably-rare miscorrection), and the 72B line codec.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "ecc/chipkill.h"
#include "ecc/gf256.h"

namespace relaxfault {
namespace {

TEST(Gf256, AddIsXor)
{
    EXPECT_EQ(Gf256::add(0x57, 0x83), 0x57 ^ 0x83);
    EXPECT_EQ(Gf256::add(0xaa, 0xaa), 0);
}

TEST(Gf256, MulIdentityAndZero)
{
    for (unsigned a = 0; a < 256; ++a) {
        EXPECT_EQ(Gf256::mul(static_cast<uint8_t>(a), 1),
                  static_cast<uint8_t>(a));
        EXPECT_EQ(Gf256::mul(static_cast<uint8_t>(a), 0), 0);
    }
}

TEST(Gf256, MulCommutative)
{
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const auto a = static_cast<uint8_t>(rng.uniformInt(256));
        const auto b = static_cast<uint8_t>(rng.uniformInt(256));
        EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    }
}

TEST(Gf256, MulAssociativeSampled)
{
    Rng rng(2);
    for (int i = 0; i < 3000; ++i) {
        const auto a = static_cast<uint8_t>(rng.uniformInt(256));
        const auto b = static_cast<uint8_t>(rng.uniformInt(256));
        const auto c = static_cast<uint8_t>(rng.uniformInt(256));
        EXPECT_EQ(Gf256::mul(Gf256::mul(a, b), c),
                  Gf256::mul(a, Gf256::mul(b, c)));
    }
}

TEST(Gf256, DistributiveSampled)
{
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        const auto a = static_cast<uint8_t>(rng.uniformInt(256));
        const auto b = static_cast<uint8_t>(rng.uniformInt(256));
        const auto c = static_cast<uint8_t>(rng.uniformInt(256));
        EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
                  Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
    }
}

TEST(Gf256, InverseForAllNonzero)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto inv = Gf256::inv(static_cast<uint8_t>(a));
        EXPECT_EQ(Gf256::mul(static_cast<uint8_t>(a), inv), 1);
        EXPECT_EQ(Gf256::div(1, static_cast<uint8_t>(a)), inv);
    }
}

TEST(Gf256, AlphaPowersCycle)
{
    EXPECT_EQ(Gf256::alphaPow(0), 1);
    EXPECT_EQ(Gf256::alphaPow(255), 1);
    EXPECT_EQ(Gf256::alphaPow(1), 2);  // alpha = x = 0x02.
    // All 255 powers distinct.
    bool seen[256] = {};
    for (unsigned e = 0; e < 255; ++e) {
        const uint8_t value = Gf256::alphaPow(e);
        EXPECT_FALSE(seen[value]);
        seen[value] = true;
        EXPECT_EQ(Gf256::logAlpha(value), e);
    }
}

void
randomCodeword(Rng &rng, uint8_t codeword[ChipkillCode::kTotalSymbols])
{
    for (unsigned i = 0; i < ChipkillCode::kDataSymbols; ++i)
        codeword[i] = static_cast<uint8_t>(rng.uniformInt(256));
    ChipkillCode::encode(codeword);
}

TEST(Chipkill, CleanCodewordDecodesOk)
{
    Rng rng(10);
    for (int i = 0; i < 2000; ++i) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        uint8_t copy[18];
        std::memcpy(copy, codeword, 18);
        const auto result = ChipkillCode::decode(copy);
        EXPECT_EQ(result.status, EccStatus::Ok);
        EXPECT_EQ(std::memcmp(copy, codeword, 18), 0);
    }
}

class SingleErrorPosition : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SingleErrorPosition, CorrectedExactly)
{
    const unsigned position = GetParam();
    Rng rng(100 + position);
    for (int i = 0; i < 500; ++i) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        uint8_t corrupted[18];
        std::memcpy(corrupted, codeword, 18);
        const auto error =
            static_cast<uint8_t>(1 + rng.uniformInt(255));
        corrupted[position] ^= error;
        const auto result = ChipkillCode::decode(corrupted);
        ASSERT_EQ(result.status, EccStatus::Corrected);
        EXPECT_EQ(result.correctedSymbol, position);
        EXPECT_EQ(std::memcmp(corrupted, codeword, 18), 0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SingleErrorPosition,
                         ::testing::Range(0u, 18u));

TEST(Chipkill, DoubleErrorsDetectedOrRareMiscorrect)
{
    Rng rng(11);
    unsigned detected = 0;
    unsigned miscorrected = 0;
    unsigned silent_wrong = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        uint8_t corrupted[18];
        std::memcpy(corrupted, codeword, 18);
        const auto p1 = static_cast<unsigned>(rng.uniformInt(18));
        auto p2 = static_cast<unsigned>(rng.uniformInt(18));
        while (p2 == p1)
            p2 = static_cast<unsigned>(rng.uniformInt(18));
        corrupted[p1] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        corrupted[p2] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        const auto result = ChipkillCode::decode(corrupted);
        if (result.status == EccStatus::Uncorrectable) {
            ++detected;
        } else {
            ++miscorrected;
            if (std::memcmp(corrupted, codeword, 18) != 0)
                ++silent_wrong;
        }
    }
    // Distance-3 RS aliases a double error onto a valid single-error
    // syndrome with probability ~ n/q = 18/255 ~ 7%.
    const double miss_rate = static_cast<double>(miscorrected) / trials;
    EXPECT_GT(static_cast<double>(detected) / trials, 0.88);
    EXPECT_NEAR(miss_rate, 18.0 / 255.0, 0.02);
    // A miscorrection never restores the original data.
    EXPECT_EQ(silent_wrong, miscorrected);
}

TEST(Chipkill, ZeroSyndromeZeroFalseAlarm)
{
    // Error-free codewords are never "corrected".
    Rng rng(12);
    for (int i = 0; i < 2000; ++i) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        const auto result = ChipkillCode::decode(codeword);
        EXPECT_EQ(result.status, EccStatus::Ok);
    }
}

TEST(LineCodecTest, RoundTripCleanLine)
{
    Rng rng(13);
    uint8_t data[64];
    for (auto &byte : data)
        byte = static_cast<uint8_t>(rng.uniformInt(256));
    uint8_t line[72];
    LineCodec::buildLine(data, line);
    const auto result = LineCodec::decodeLine(line);
    EXPECT_EQ(result.status, EccStatus::Ok);
    uint8_t out[64];
    LineCodec::extractData(line, out);
    EXPECT_EQ(std::memcmp(out, data, 64), 0);
}

TEST(LineCodecTest, SingleFaultyDeviceFullyCorrected)
{
    // Corrupt all 4 bytes of one device (a whole-chip failure for this
    // line): every codeword sees exactly one bad symbol -> chipkill.
    Rng rng(14);
    for (unsigned device = 0; device < 18; ++device) {
        uint8_t data[64];
        for (auto &byte : data)
            byte = static_cast<uint8_t>(rng.uniformInt(256));
        uint8_t line[72];
        LineCodec::buildLine(data, line);
        for (unsigned w = 0; w < 4; ++w)
            line[4 * device + w] ^=
                static_cast<uint8_t>(1 + rng.uniformInt(255));
        const auto result = LineCodec::decodeLine(line);
        EXPECT_EQ(result.status, EccStatus::Corrected);
        EXPECT_EQ(result.correctedCodewords, 4u);
        uint8_t out[64];
        LineCodec::extractData(line, out);
        EXPECT_EQ(std::memcmp(out, data, 64), 0);
    }
}

TEST(LineCodecTest, TwoFaultyDevicesUncorrectable)
{
    Rng rng(15);
    unsigned due = 0;
    const int trials = 500;
    for (int i = 0; i < trials; ++i) {
        uint8_t data[64] = {};
        uint8_t line[72];
        LineCodec::buildLine(data, line);
        // Both devices err in the same codeword (byte 0).
        line[4 * 3 + 0] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        line[4 * 9 + 0] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        const auto result = LineCodec::decodeLine(line);
        if (result.status == EccStatus::Uncorrectable)
            ++due;
    }
    EXPECT_GT(due, trials * 85 / 100);
}

TEST(LineCodecTest, DisjointCodewordErrorsBothCorrected)
{
    // Two devices erring in *different* beat pairs are two separate
    // single-symbol corrections — chipkill survives.
    uint8_t data[64] = {1, 2, 3};
    uint8_t line[72];
    LineCodec::buildLine(data, line);
    line[4 * 5 + 0] ^= 0x5a;  // Device 5, codeword 0.
    line[4 * 11 + 2] ^= 0xa5; // Device 11, codeword 2.
    const auto result = LineCodec::decodeLine(line);
    EXPECT_EQ(result.status, EccStatus::Corrected);
    EXPECT_EQ(result.correctedCodewords, 2u);
    uint8_t out[64];
    LineCodec::extractData(line, out);
    EXPECT_EQ(std::memcmp(out, data, 64), 0);
}

TEST(LineCodecTest, CheckBytesDependOnData)
{
    uint8_t data_a[64] = {};
    uint8_t data_b[64] = {};
    data_b[10] = 1;
    uint8_t line_a[72];
    uint8_t line_b[72];
    LineCodec::buildLine(data_a, line_a);
    LineCodec::buildLine(data_b, line_b);
    EXPECT_NE(std::memcmp(line_a + 64, line_b + 64, 8), 0);
}


TEST(ChipkillErasure, SingleErasureAllPositions)
{
    Rng rng(20);
    for (unsigned p = 0; p < 18; ++p) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        uint8_t corrupted[18];
        std::memcpy(corrupted, codeword, 18);
        corrupted[p] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        const auto result =
            ChipkillCode::decodeWithErasures(corrupted, 1u << p);
        ASSERT_EQ(result.status, EccStatus::Corrected);
        EXPECT_EQ(std::memcmp(corrupted, codeword, 18), 0);
    }
}

TEST(ChipkillErasure, TwoErasuresCorrected)
{
    // A distance-3 code corrects two erasures with known locations --
    // more than its one unknown-location error.
    Rng rng(21);
    for (int i = 0; i < 2000; ++i) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        uint8_t corrupted[18];
        std::memcpy(corrupted, codeword, 18);
        const auto p1 = static_cast<unsigned>(rng.uniformInt(18));
        auto p2 = static_cast<unsigned>(rng.uniformInt(18));
        while (p2 == p1)
            p2 = static_cast<unsigned>(rng.uniformInt(18));
        corrupted[p1] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        // The second erased symbol may or may not actually be wrong.
        if (rng.bernoulli(0.7))
            corrupted[p2] ^= static_cast<uint8_t>(rng.uniformInt(256));
        const auto result = ChipkillCode::decodeWithErasures(
            corrupted, (1u << p1) | (1u << p2));
        ASSERT_EQ(result.status, EccStatus::Corrected);
        ASSERT_EQ(std::memcmp(corrupted, codeword, 18), 0);
    }
}

TEST(ChipkillErasure, SingleErasurePlusStrayErrorDetected)
{
    Rng rng(22);
    unsigned detected = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        codeword[3] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        codeword[9] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        // Only position 3 is declared; the stray error at 9 must not
        // be silently folded into it.
        const auto result =
            ChipkillCode::decodeWithErasures(codeword, 1u << 3);
        detected += result.status == EccStatus::Uncorrectable;
    }
    EXPECT_EQ(detected, static_cast<unsigned>(trials));
}

TEST(ChipkillErasure, MoreThanTwoErasuresUncorrectable)
{
    uint8_t codeword[18] = {};
    ChipkillCode::encode(codeword);
    codeword[1] ^= 0x11;
    const auto result = ChipkillCode::decodeWithErasures(
        codeword, (1u << 1) | (1u << 2) | (1u << 3));
    EXPECT_EQ(result.status, EccStatus::Uncorrectable);
}

TEST(ChipkillErasure, CleanCodewordWithErasureHintStaysClean)
{
    Rng rng(23);
    uint8_t codeword[18];
    randomCodeword(rng, codeword);
    uint8_t copy[18];
    std::memcpy(copy, codeword, 18);
    const auto result = ChipkillCode::decodeWithErasures(copy, 1u << 5);
    EXPECT_EQ(result.status, EccStatus::Ok);
    EXPECT_EQ(std::memcmp(copy, codeword, 18), 0);
}

// ---------------------------------------------------------------------
// Differential tests against a brute-force reference decoder.
//
// The reference shares NO algebra with the production decoder: validity
// is "re-encoding the 16 data symbols reproduces the stored check
// symbols" (the codeword space is exactly the graph of encode, since
// the two parity constraints have a unique solution per data vector),
// and decoding is exhaustive search over all 18x255 single-symbol
// corruptions. Distance 3 makes radius-1 spheres around codewords
// disjoint, so on ANY received word — including double errors whose
// syndrome aliases a single error — the two decoders must agree bit for
// bit. Any divergence is a bug in the production syndrome algebra.

bool
refIsCodeword(const uint8_t word[18])
{
    uint8_t re[18];
    std::memcpy(re, word, 18);
    ChipkillCode::encode(re);
    return re[16] == word[16] && re[17] == word[17];
}

struct RefResult
{
    EccStatus status = EccStatus::Ok;
    unsigned position = 0;
    uint8_t corrected[18] = {};
};

RefResult
referenceDecode(const uint8_t word[18], bool check_uniqueness = false)
{
    RefResult result;
    std::memcpy(result.corrected, word, 18);
    if (refIsCodeword(word))
        return result;
    result.status = EccStatus::Uncorrectable;
    unsigned matches = 0;
    for (unsigned position = 0; position < 18; ++position) {
        for (unsigned error = 1; error < 256; ++error) {
            uint8_t candidate[18];
            std::memcpy(candidate, word, 18);
            candidate[position] ^= static_cast<uint8_t>(error);
            if (!refIsCodeword(candidate))
                continue;
            ++matches;
            result.status = EccStatus::Corrected;
            result.position = position;
            std::memcpy(result.corrected, candidate, 18);
            if (!check_uniqueness)
                return result;
        }
    }
    // Disjoint radius-1 spheres: at most one codeword within distance 1.
    EXPECT_LE(matches, 1u);
    return result;
}

void
expectAgreement(const uint8_t word[18])
{
    const RefResult reference = referenceDecode(word);
    uint8_t decoded[18];
    std::memcpy(decoded, word, 18);
    const auto result = ChipkillCode::decode(decoded);
    ASSERT_EQ(result.status, reference.status);
    if (reference.status == EccStatus::Corrected) {
        EXPECT_EQ(result.correctedSymbol, reference.position);
    }
    if (reference.status != EccStatus::Uncorrectable) {
        EXPECT_EQ(std::memcmp(decoded, reference.corrected, 18), 0);
    }
}

TEST(ChipkillDifferential, ExhaustiveSingleSymbolSweep)
{
    // Every position x every nonzero error value, on fixed base
    // codewords: production must correct exactly, and must agree with
    // the brute-force reference on position and restored word.
    for (const uint64_t seed : {2024u, 2025u}) {
        Rng rng(seed);
        uint8_t codeword[18];
        randomCodeword(rng, codeword);
        for (unsigned position = 0; position < 18; ++position) {
            for (unsigned error = 1; error < 256; ++error) {
                uint8_t corrupted[18];
                std::memcpy(corrupted, codeword, 18);
                corrupted[position] ^= static_cast<uint8_t>(error);

                const RefResult reference = referenceDecode(corrupted);
                ASSERT_EQ(reference.status, EccStatus::Corrected);
                ASSERT_EQ(reference.position, position);
                ASSERT_EQ(
                    std::memcmp(reference.corrected, codeword, 18), 0);

                const auto result = ChipkillCode::decode(corrupted);
                ASSERT_EQ(result.status, EccStatus::Corrected)
                    << "position " << position << " error " << error;
                ASSERT_EQ(result.correctedSymbol, position);
                ASSERT_EQ(std::memcmp(corrupted, codeword, 18), 0);
            }
        }
    }
}

TEST(ChipkillDifferential, AgreesOnArbitraryReceivedWords)
{
    // Uniform random words: usually far from any codeword (both say
    // DUE), occasionally within distance 1 (both must correct alike).
    Rng rng(30);
    for (int i = 0; i < 1500; ++i) {
        uint8_t word[18];
        for (auto &symbol : word)
            symbol = static_cast<uint8_t>(rng.uniformInt(256));
        expectAgreement(word);
    }
}

TEST(ChipkillDifferential, AgreesOnAliasingDoubleErrors)
{
    // Double errors are the adversarial case: ~7% alias onto a valid
    // single-error syndrome and the production decoder "corrects" to a
    // wrong codeword. The reference must reach the exact same wrong
    // codeword — that is what disjoint spheres force.
    Rng rng(31);
    unsigned miscorrected = 0;
    for (int i = 0; i < 1200; ++i) {
        uint8_t word[18];
        randomCodeword(rng, word);
        const auto p1 = static_cast<unsigned>(rng.uniformInt(18));
        auto p2 = static_cast<unsigned>(rng.uniformInt(18));
        while (p2 == p1)
            p2 = static_cast<unsigned>(rng.uniformInt(18));
        word[p1] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        word[p2] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        const RefResult reference = referenceDecode(word);
        if (reference.status == EccStatus::Corrected)
            ++miscorrected;
        expectAgreement(word);
    }
    // The aliasing case must actually be exercised (~7% of trials).
    EXPECT_GT(miscorrected, 20u);
}

TEST(ChipkillDifferential, CorrectionUniqueWithinDistanceOne)
{
    // Full-scan uniqueness check (no early exit) on sampled words.
    Rng rng(32);
    for (int i = 0; i < 40; ++i) {
        uint8_t word[18];
        randomCodeword(rng, word);
        const auto position = static_cast<unsigned>(rng.uniformInt(18));
        word[position] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        const RefResult reference =
            referenceDecode(word, /*check_uniqueness=*/true);
        EXPECT_EQ(reference.status, EccStatus::Corrected);
        EXPECT_EQ(reference.position, position);
    }
}

TEST(ChipkillDifferential, ExhaustiveSingleSymbolSweepAllSimdLevels)
{
    // The 18x255 sweep once more, embedded at line level: every
    // corruption goes through decodeLineBatched at every supported
    // dispatch level and must restore the brute-force reference word
    // bit for bit. The corrupted codeword lane rotates with the error
    // value so all four lanes see every position.
    Rng rng(2026);
    uint8_t data[64];
    for (auto &byte : data)
        byte = static_cast<uint8_t>(rng.uniformInt(256));
    uint8_t base[72];
    LineCodec::buildLine(data, base);

    const std::vector<SimdLevel> levels = supportedSimdLevels();
    for (unsigned position = 0; position < 18; ++position) {
        for (unsigned error = 1; error < 256; ++error) {
            const unsigned lane = error % 4;
            uint8_t corrupted[72];
            std::memcpy(corrupted, base, 72);
            corrupted[4 * position + lane] ^=
                static_cast<uint8_t>(error);

            // Brute-force reference on the affected codeword.
            uint8_t word[18];
            for (unsigned d = 0; d < 18; ++d)
                word[d] = corrupted[4 * d + lane];
            const RefResult reference = referenceDecode(word);
            ASSERT_EQ(reference.status, EccStatus::Corrected);
            ASSERT_EQ(reference.position, position);

            for (const SimdLevel level : levels) {
                ScopedSimdLevel scoped(level);
                uint8_t line[72];
                std::memcpy(line, corrupted, 72);
                const auto result = LineCodec::decodeLineBatched(line);
                ASSERT_EQ(result.status, EccStatus::Corrected)
                    << "level " << simdLevelName(level) << " position "
                    << position << " error " << error;
                ASSERT_EQ(result.correctedCodewords, 1u);
                ASSERT_EQ(result.correctedDeviceMask, 1u << position);
                ASSERT_EQ(std::memcmp(line, base, 72), 0)
                    << "level " << simdLevelName(level) << " position "
                    << position << " error " << error;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Erasure decoding against the brute-force reference. Validity is still
// "re-encode and compare"; the reference searches every assignment of
// the erased symbols. With one erasure a candidate codeword is unique
// when it exists (two candidates would be codewords at distance 1);
// with two erasures exactly one candidate always exists (the two parity
// constraints in the erased unknowns have a nonsingular 2x2 Vandermonde
// system) — the reference verifies that uniqueness by exhaustion, which
// is precisely why two erasures cost all detection margin.

RefResult
referenceDecodeWithErasures(const uint8_t word[18], uint32_t erasure_mask)
{
    RefResult result;
    std::memcpy(result.corrected, word, 18);

    unsigned positions[2] = {0, 0};
    unsigned erasures = 0;
    for (unsigned i = 0; i < 18; ++i) {
        if (!(erasure_mask & (1u << i)))
            continue;
        if (erasures < 2)
            positions[erasures] = i;
        ++erasures;
    }
    if (erasures == 0)
        return referenceDecode(word);
    if (erasures > 2) {
        result.status = EccStatus::Uncorrectable;
        return result;
    }

    unsigned matches = 0;
    uint8_t found[18] = {};
    if (erasures == 1) {
        for (unsigned v = 0; v < 256; ++v) {
            uint8_t candidate[18];
            std::memcpy(candidate, word, 18);
            candidate[positions[0]] = static_cast<uint8_t>(v);
            if (!refIsCodeword(candidate))
                continue;
            ++matches;
            std::memcpy(found, candidate, 18);
        }
        EXPECT_LE(matches, 1u);
    } else {
        for (unsigned v1 = 0; v1 < 256; ++v1) {
            for (unsigned v2 = 0; v2 < 256; ++v2) {
                uint8_t candidate[18];
                std::memcpy(candidate, word, 18);
                candidate[positions[0]] = static_cast<uint8_t>(v1);
                candidate[positions[1]] = static_cast<uint8_t>(v2);
                if (!refIsCodeword(candidate))
                    continue;
                ++matches;
                std::memcpy(found, candidate, 18);
            }
        }
        // Nonsingular system: exactly one solution, always.
        EXPECT_EQ(matches, 1u);
    }

    if (matches == 0) {
        result.status = EccStatus::Uncorrectable;
        return result;
    }
    if (std::memcmp(found, word, 18) == 0)
        return result;  // Erased symbols were consistent: Ok.
    result.status = EccStatus::Corrected;
    result.position = positions[0];
    std::memcpy(result.corrected, found, 18);
    return result;
}

TEST(ChipkillErasureDifferential, SingleErasureSweepAgainstReference)
{
    // Every erasure position x {clean word, corrupted erased symbol,
    // corrupted + stray error elsewhere}: production and reference must
    // agree on verdict and bytes.
    Rng rng(2027);
    for (unsigned p = 0; p < 18; ++p) {
        for (int kind = 0; kind < 3; ++kind) {
            for (int rep = 0; rep < 8; ++rep) {
                uint8_t word[18];
                randomCodeword(rng, word);
                if (kind >= 1)
                    word[p] ^=
                        static_cast<uint8_t>(1 + rng.uniformInt(255));
                if (kind == 2) {
                    auto q = static_cast<unsigned>(rng.uniformInt(18));
                    while (q == p)
                        q = static_cast<unsigned>(rng.uniformInt(18));
                    word[q] ^=
                        static_cast<uint8_t>(1 + rng.uniformInt(255));
                }
                const RefResult reference =
                    referenceDecodeWithErasures(word, 1u << p);
                uint8_t decoded[18];
                std::memcpy(decoded, word, 18);
                const auto result =
                    ChipkillCode::decodeWithErasures(decoded, 1u << p);
                ASSERT_EQ(result.status, reference.status)
                    << "p " << p << " kind " << kind;
                if (reference.status == EccStatus::Corrected)
                    EXPECT_EQ(result.correctedSymbol, reference.position);
                if (reference.status != EccStatus::Uncorrectable)
                    EXPECT_EQ(
                        std::memcmp(decoded, reference.corrected, 18), 0);
            }
        }
    }
}

TEST(ChipkillErasureDifferential, TwoErasuresAgainstReference)
{
    // Random erasure pairs, random damage on neither/one/both erased
    // symbols and occasionally a stray error elsewhere (which two
    // erasures cannot detect — production and reference must reach the
    // same unique wrong codeword).
    Rng rng(2028);
    for (int iter = 0; iter < 40; ++iter) {
        uint8_t word[18];
        randomCodeword(rng, word);
        const auto p1 = static_cast<unsigned>(rng.uniformInt(18));
        auto p2 = static_cast<unsigned>(rng.uniformInt(18));
        while (p2 == p1)
            p2 = static_cast<unsigned>(rng.uniformInt(18));
        if (rng.bernoulli(0.7))
            word[p1] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        if (rng.bernoulli(0.7))
            word[p2] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        if (rng.bernoulli(0.25)) {
            auto q = static_cast<unsigned>(rng.uniformInt(18));
            while (q == p1 || q == p2)
                q = static_cast<unsigned>(rng.uniformInt(18));
            word[q] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        }
        const uint32_t mask = (1u << p1) | (1u << p2);
        const RefResult reference =
            referenceDecodeWithErasures(word, mask);
        uint8_t decoded[18];
        std::memcpy(decoded, word, 18);
        const auto result =
            ChipkillCode::decodeWithErasures(decoded, mask);
        ASSERT_EQ(result.status, reference.status);
        if (reference.status == EccStatus::Corrected)
            EXPECT_EQ(result.correctedSymbol, reference.position);
        if (reference.status != EccStatus::Uncorrectable)
            EXPECT_EQ(std::memcmp(decoded, reference.corrected, 18), 0);
    }
}

TEST(ChipkillErasureDifferential, LineLevelAllSimdLevelsAgree)
{
    // Line-level erasure decoding: the scalar decodeLineWithErasures
    // verdict/bytes, the batched decode at every dispatch level, and
    // the per-codeword brute-force reference must all coincide.
    Rng rng(2029);
    const std::vector<SimdLevel> levels = supportedSimdLevels();
    for (int iter = 0; iter < 30; ++iter) {
        uint8_t data[64];
        for (auto &byte : data)
            byte = static_cast<uint8_t>(rng.uniformInt(256));
        uint8_t line[72];
        LineCodec::buildLine(data, line);

        const auto p1 = static_cast<unsigned>(rng.uniformInt(18));
        auto p2 = static_cast<unsigned>(rng.uniformInt(18));
        while (p2 == p1)
            p2 = static_cast<unsigned>(rng.uniformInt(18));
        const uint32_t mask = (1u << p1) | (1u << p2);
        for (unsigned w = 0; w < 4; ++w) {
            if (rng.bernoulli(0.6))
                line[4 * p1 + w] ^=
                    static_cast<uint8_t>(1 + rng.uniformInt(255));
            if (rng.bernoulli(0.6))
                line[4 * p2 + w] ^=
                    static_cast<uint8_t>(1 + rng.uniformInt(255));
        }

        // Scalar seed path is the byte-level oracle for the levels.
        uint8_t expected[72];
        std::memcpy(expected, line, 72);
        const auto expected_result =
            LineCodec::decodeLineWithErasures(expected, mask);

        // Per-codeword reference pins the scalar oracle itself.
        unsigned ref_corrected = 0;
        bool ref_unc = false;
        for (unsigned w = 0; w < 4; ++w) {
            uint8_t word[18];
            for (unsigned d = 0; d < 18; ++d)
                word[d] = line[4 * d + w];
            const RefResult reference =
                referenceDecodeWithErasures(word, mask);
            ref_unc |= reference.status == EccStatus::Uncorrectable;
            ref_corrected += reference.status == EccStatus::Corrected;
            if (reference.status != EccStatus::Uncorrectable) {
                for (unsigned d = 0; d < 18; ++d)
                    ASSERT_EQ(expected[4 * d + w],
                              reference.corrected[d]);
            }
        }
        ASSERT_EQ(expected_result.status,
                  ref_unc ? EccStatus::Uncorrectable
                          : (ref_corrected > 0 ? EccStatus::Corrected
                                               : EccStatus::Ok));
        ASSERT_EQ(expected_result.correctedCodewords, ref_corrected);

        for (const SimdLevel level : levels) {
            ScopedSimdLevel scoped(level);
            uint8_t batched[72];
            std::memcpy(batched, line, 72);
            const auto result =
                LineCodec::decodeLineBatched(batched, mask);
            ASSERT_EQ(result.status, expected_result.status)
                << "level " << simdLevelName(level);
            ASSERT_EQ(result.correctedCodewords,
                      expected_result.correctedCodewords);
            ASSERT_EQ(result.correctedDeviceMask,
                      expected_result.correctedDeviceMask);
            ASSERT_EQ(std::memcmp(batched, expected, 72), 0)
                << "level " << simdLevelName(level);
        }
    }
}

TEST(LineCodecTest, ErasureDecodingSurvivesTwoKnownBadDevices)
{
    Rng rng(24);
    uint8_t data[64];
    for (auto &byte : data)
        byte = static_cast<uint8_t>(rng.uniformInt(256));
    uint8_t line[72];
    LineCodec::buildLine(data, line);
    for (unsigned w = 0; w < 4; ++w) {
        line[4 * 2 + w] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
        line[4 * 13 + w] ^= static_cast<uint8_t>(1 + rng.uniformInt(255));
    }
    const auto result = LineCodec::decodeLineWithErasures(
        line, (1u << 2) | (1u << 13));
    EXPECT_EQ(result.status, EccStatus::Corrected);
    uint8_t out[64];
    LineCodec::extractData(line, out);
    EXPECT_EQ(std::memcmp(out, data, 64), 0);
}

} // namespace
} // namespace relaxfault
