/**
 * @file
 * Fuzz equivalence suite for the SIMD dispatch layer (ctest label
 * `simd`): random lines x random <=3-symbol error/erasure patterns,
 * asserting the batched decode's verdicts and corrected bytes are
 * bit-identical to the scalar reference at every supported dispatch
 * level, and that the per-level syndrome kernels agree on arbitrary
 * byte patterns. The scalar reference is the seed implementation, so
 * green here means the vectorized hot path cannot have changed any
 * simulator output.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "ecc/chipkill.h"
#include "ecc/gf256.h"

namespace relaxfault {
namespace {

TEST(SimdDispatch, LevelNamesRoundTrip)
{
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2}) {
        const auto parsed = parseSimdLevel(simdLevelName(level));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, level);
    }
    EXPECT_FALSE(parseSimdLevel("").has_value());
    EXPECT_FALSE(parseSimdLevel("avx512").has_value());
    EXPECT_FALSE(parseSimdLevel("SCALAR").has_value());
}

TEST(SimdDispatch, SupportedLevelsAreOrderedAndUsable)
{
    const std::vector<SimdLevel> levels = supportedSimdLevels();
    ASSERT_GE(levels.size(), 2u);  // Scalar and SWAR always exist.
    EXPECT_EQ(levels.front(), SimdLevel::Scalar);
    for (size_t i = 1; i < levels.size(); ++i)
        EXPECT_LT(static_cast<int>(levels[i - 1]),
                  static_cast<int>(levels[i]));
    for (const SimdLevel level : levels) {
        EXPECT_TRUE(simdLevelSupported(level));
        ScopedSimdLevel scoped(level);
        EXPECT_EQ(activeSimdLevel(), level);
    }
    EXPECT_EQ(bestSimdLevel(), levels.back());
}

TEST(SimdDispatch, ScopedOverrideRestores)
{
    const SimdLevel before = activeSimdLevel();
    {
        ScopedSimdLevel scoped(SimdLevel::Scalar);
        EXPECT_EQ(activeSimdLevel(), SimdLevel::Scalar);
    }
    EXPECT_EQ(activeSimdLevel(), before);
}

TEST(SimdSyndromes, KernelsAgreeOnArbitraryBytes)
{
    // The syndrome kernels must agree on ANY 72-byte pattern, not just
    // near-codewords — corrupted lines can be arbitrarily far from the
    // code space.
    Rng rng(40);
    const bool avx2 = simdLevelSupported(SimdLevel::Avx2);
    for (int iter = 0; iter < 50000; ++iter) {
        uint8_t line[Gf256Batched::kLineBytes];
        for (auto &byte : line)
            byte = static_cast<uint8_t>(rng.uniformInt(256));
        const PackedLineSyndromes reference =
            Gf256Batched::lineSyndromesScalar(line);
        const PackedLineSyndromes swar =
            Gf256Batched::lineSyndromesSwar(line);
        ASSERT_EQ(swar.s0, reference.s0) << "iter " << iter;
        ASSERT_EQ(swar.s1, reference.s1) << "iter " << iter;
        if (avx2) {
            const PackedLineSyndromes vec =
                Gf256Batched::lineSyndromesAvx2(line);
            ASSERT_EQ(vec.s0, reference.s0) << "iter " << iter;
            ASSERT_EQ(vec.s1, reference.s1) << "iter " << iter;
        }
    }
}

TEST(SimdSyndromes, CleanLinesHaveZeroSyndromes)
{
    Rng rng(41);
    for (int iter = 0; iter < 2000; ++iter) {
        uint8_t data[LineCodec::kDataBytes];
        for (auto &byte : data)
            byte = static_cast<uint8_t>(rng.uniformInt(256));
        uint8_t line[LineCodec::kLineBytes];
        LineCodec::buildLine(data, line);
        for (const SimdLevel level : supportedSimdLevels()) {
            ScopedSimdLevel scoped(level);
            const PackedLineSyndromes packed =
                Gf256Batched::lineSyndromes(line);
            ASSERT_EQ(packed.s0 | packed.s1, 0u)
                << "level " << simdLevelName(level);
        }
    }
}

TEST(SimdSyndromes, MulAlphaPackedMatchesTableMultiply)
{
    for (unsigned value = 0; value < 256; ++value) {
        const uint64_t lanes = 0x0101010101010101ull * value;
        const uint64_t product = Gf256Batched::mulAlphaPacked(lanes);
        const uint8_t expected =
            Gf256::mul(static_cast<uint8_t>(value), 2);
        for (unsigned lane = 0; lane < 8; ++lane)
            ASSERT_EQ(static_cast<uint8_t>(product >> (8 * lane)),
                      expected);
    }
}

/**
 * One fuzz case: a random line with up to 3 corrupted symbols and an
 * optional erasure mask, decoded by the scalar seed path and by
 * decodeLineBatched at every supported level. Everything must match:
 * status, corrected-codeword count, device mask, and all 72 bytes.
 */
void
fuzzDecodeCase(Rng &rng, int iter)
{
    uint8_t data[LineCodec::kDataBytes];
    for (auto &byte : data)
        byte = static_cast<uint8_t>(rng.uniformInt(256));
    uint8_t line[LineCodec::kLineBytes];
    {
        // Build through the scalar path so every level decodes the
        // exact same input regardless of encode dispatch.
        ScopedSimdLevel scoped(SimdLevel::Scalar);
        LineCodec::buildLine(data, line);
    }

    const unsigned corruptions = static_cast<unsigned>(rng.uniformInt(4));
    for (unsigned i = 0; i < corruptions; ++i)
        line[rng.uniformInt(LineCodec::kLineBytes)] ^=
            static_cast<uint8_t>(1 + rng.uniformInt(255));

    // Erasure mask: none (plain decode), 1-2 devices (erasure solve),
    // or occasionally 3+ (must refuse identically). Erased devices
    // sometimes coincide with the corrupted ones, sometimes not.
    uint32_t erased = 0;
    const int mask_kind = static_cast<int>(rng.uniformInt(4));
    if (mask_kind > 0) {
        const unsigned devices = static_cast<unsigned>(
            1 + rng.uniformInt(mask_kind == 3 ? 4 : 2));
        for (unsigned i = 0; i < devices; ++i)
            erased |= 1u << rng.uniformInt(18);
    }

    uint8_t expected[LineCodec::kLineBytes];
    std::memcpy(expected, line, LineCodec::kLineBytes);
    LineCodec::LineResult expected_result;
    {
        ScopedSimdLevel scoped(SimdLevel::Scalar);
        expected_result = erased == 0
            ? LineCodec::decodeLine(expected)
            : LineCodec::decodeLineWithErasures(expected, erased);
    }

    for (const SimdLevel level : supportedSimdLevels()) {
        ScopedSimdLevel scoped(level);
        uint8_t batched[LineCodec::kLineBytes];
        std::memcpy(batched, line, LineCodec::kLineBytes);
        const auto result = LineCodec::decodeLineBatched(batched, erased);
        ASSERT_EQ(result.status, expected_result.status)
            << "iter " << iter << " level " << simdLevelName(level)
            << " erased 0x" << std::hex << erased;
        ASSERT_EQ(result.correctedCodewords,
                  expected_result.correctedCodewords)
            << "iter " << iter << " level " << simdLevelName(level);
        ASSERT_EQ(result.correctedDeviceMask,
                  expected_result.correctedDeviceMask)
            << "iter " << iter << " level " << simdLevelName(level);
        ASSERT_EQ(
            std::memcmp(batched, expected, LineCodec::kLineBytes), 0)
            << "iter " << iter << " level " << simdLevelName(level)
            << " erased 0x" << std::hex << erased;
    }
}

TEST(SimdDecodeFuzz, BatchedMatchesScalarOnRandomPatterns)
{
    Rng rng(42);
    for (int iter = 0; iter < 20000; ++iter)
        fuzzDecodeCase(rng, iter);
}

TEST(SimdDecodeFuzz, WholeDeviceFailuresAllLevels)
{
    // The chipkill headline case: one whole device out, all four
    // codewords corrected, at every level, for every device.
    Rng rng(43);
    for (unsigned device = 0; device < 18; ++device) {
        uint8_t data[LineCodec::kDataBytes];
        for (auto &byte : data)
            byte = static_cast<uint8_t>(rng.uniformInt(256));
        uint8_t clean[LineCodec::kLineBytes];
        {
            ScopedSimdLevel scoped(SimdLevel::Scalar);
            LineCodec::buildLine(data, clean);
        }
        uint8_t corrupted[LineCodec::kLineBytes];
        std::memcpy(corrupted, clean, LineCodec::kLineBytes);
        for (unsigned w = 0; w < 4; ++w)
            corrupted[4 * device + w] ^=
                static_cast<uint8_t>(1 + rng.uniformInt(255));
        for (const SimdLevel level : supportedSimdLevels()) {
            ScopedSimdLevel scoped(level);
            uint8_t line[LineCodec::kLineBytes];
            std::memcpy(line, corrupted, LineCodec::kLineBytes);
            const auto result = LineCodec::decodeLineBatched(line);
            ASSERT_EQ(result.status, EccStatus::Corrected);
            ASSERT_EQ(result.correctedCodewords, 4u);
            ASSERT_EQ(result.correctedDeviceMask, 1u << device);
            ASSERT_EQ(
                std::memcmp(line, clean, LineCodec::kLineBytes), 0);
        }
    }
}

TEST(SimdEncodeFuzz, EncodeLineMatchesScalarAtEveryLevel)
{
    Rng rng(44);
    for (int iter = 0; iter < 20000; ++iter) {
        uint8_t stale[LineCodec::kLineBytes];
        for (auto &byte : stale)
            byte = static_cast<uint8_t>(rng.uniformInt(256));

        // Stale garbage in the check bytes must not leak into the
        // encode result on any path.
        uint8_t expected[LineCodec::kLineBytes];
        std::memcpy(expected, stale, LineCodec::kLineBytes);
        {
            ScopedSimdLevel scoped(SimdLevel::Scalar);
            LineCodec::encodeLine(expected);
        }
        for (const SimdLevel level : supportedSimdLevels()) {
            ScopedSimdLevel scoped(level);
            uint8_t line[LineCodec::kLineBytes];
            std::memcpy(line, stale, LineCodec::kLineBytes);
            LineCodec::encodeLine(line);
            ASSERT_EQ(
                std::memcmp(line, expected, LineCodec::kLineBytes), 0)
                << "iter " << iter << " level " << simdLevelName(level);
        }
    }
}

} // namespace
} // namespace relaxfault
