/**
 * @file
 * Tests for the persistent fault log: serialization round trip, reboot
 * restoration (repair and data re-established from the log), and
 * malformed-input handling.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/rng.h"
#include "core/fault_log.h"
#include "faults/fault_model.h"

namespace relaxfault {
namespace {

FaultRecord
sampleishFault()
{
    FaultRecord fault;
    fault.mode = FaultMode::SingleColumn;
    fault.persistence = Persistence::Permanent;
    fault.timeHours = 1234.5;
    fault.hardPermanent = false;
    fault.activationRatePerHour = 0.125;
    RegionCluster cluster;
    cluster.bankMask = 1u << 3;
    cluster.rows = RowSet::of({10, 20, 30});
    cluster.cols = ColSet::of({7});
    cluster.bitMask = 0x00ff00ffu;
    fault.parts.push_back({2, 11, FaultRegion({cluster})});
    return fault;
}

TEST(FaultLog, RoundTripPreservesEverything)
{
    std::vector<FaultRecord> faults = {sampleishFault()};
    // Add an all-rows cluster and a multi-part (multi-rank) fault.
    FaultRecord massive;
    massive.mode = FaultMode::MultiRank;
    massive.persistence = Persistence::Permanent;
    RegionCluster whole;
    whole.bankMask = 0xff;
    whole.rows = RowSet::allRows();
    whole.cols = ColSet::allCols();
    whole.bitMask = 1u << 17;
    massive.parts.push_back({0, 5, FaultRegion({whole})});
    massive.parts.push_back({1, 5, FaultRegion({whole})});
    faults.push_back(std::move(massive));

    std::ostringstream os;
    writeFaultLog(faults, os);
    std::istringstream is(os.str());
    unsigned malformed = 9;
    const auto restored = readFaultLog(is, &malformed);
    EXPECT_EQ(malformed, 0u);
    ASSERT_EQ(restored.size(), 2u);

    const FaultRecord &a = restored[0];
    EXPECT_EQ(a.mode, FaultMode::SingleColumn);
    EXPECT_EQ(a.persistence, Persistence::Permanent);
    EXPECT_DOUBLE_EQ(a.timeHours, 1234.5);
    EXPECT_FALSE(a.hardPermanent);
    EXPECT_DOUBLE_EQ(a.activationRatePerHour, 0.125);
    ASSERT_EQ(a.parts.size(), 1u);
    EXPECT_EQ(a.parts[0].dimm, 2u);
    EXPECT_EQ(a.parts[0].device, 11u);
    ASSERT_EQ(a.parts[0].region.clusters().size(), 1u);
    const auto &cluster = a.parts[0].region.clusters()[0];
    EXPECT_EQ(cluster.bankMask, 1u << 3);
    EXPECT_EQ(cluster.bitMask, 0x00ff00ffu);
    EXPECT_EQ(cluster.rows.rows, (std::vector<uint32_t>{10, 20, 30}));
    EXPECT_EQ(cluster.cols.cols, (std::vector<uint16_t>{7}));

    const FaultRecord &b = restored[1];
    ASSERT_EQ(b.parts.size(), 2u);
    EXPECT_TRUE(b.parts[0].region.massive());
}

TEST(FaultLog, SampledFaultsRoundTrip)
{
    FaultModelConfig config;
    config.fitScale = 60.0;
    config.accelerationEnabled = false;
    const NodeFaultSampler sampler(config);
    Rng rng(11);
    std::vector<FaultRecord> faults;
    while (faults.size() < 40) {
        for (auto &fault : sampler.sampleNode(rng).faults)
            faults.push_back(std::move(fault));
    }
    std::ostringstream os;
    writeFaultLog(faults, os);
    std::istringstream is(os.str());
    const auto restored = readFaultLog(is);
    ASSERT_EQ(restored.size(), faults.size());
    const DramGeometry geometry;
    for (size_t i = 0; i < faults.size(); ++i) {
        EXPECT_EQ(restored[i].mode, faults[i].mode);
        EXPECT_EQ(restored[i].parts.size(), faults[i].parts.size());
        for (size_t p = 0; p < faults[i].parts.size(); ++p) {
            EXPECT_EQ(restored[i].parts[p].region.lineSliceCount(geometry),
                      faults[i].parts[p].region.lineSliceCount(geometry));
        }
    }
}

TEST(FaultLog, BadMagicRejected)
{
    std::istringstream is("not-a-fault-log\nfaults 1\n");
    unsigned malformed = 0;
    const auto restored = readFaultLog(is, &malformed);
    EXPECT_TRUE(restored.empty());
    EXPECT_EQ(malformed, 1u);
}

TEST(FaultLog, TruncatedRecordCounted)
{
    std::ostringstream os;
    writeFaultLog({sampleishFault()}, os);
    std::string text = os.str();
    text.resize(text.size() / 2);  // Truncate mid-record.
    std::istringstream is(text);
    unsigned malformed = 0;
    const auto restored = readFaultLog(is, &malformed);
    EXPECT_TRUE(restored.empty());
    // Truncation destroys both the trailing checksum and the record.
    EXPECT_GE(malformed, 1u);
}

TEST(FaultLog, ChecksumDetectsBitFlip)
{
    std::ostringstream os;
    writeFaultLog({sampleishFault()}, os);
    const std::string clean = os.str();

    // Every single-character flip in the body must be detected: either
    // the checksum mismatches, or the record itself fails to parse.
    const size_t body_end = clean.rfind("\nchecksum ");
    ASSERT_NE(body_end, std::string::npos);
    for (size_t pos = 0; pos < body_end; pos += 7) {
        std::string damaged = clean;
        damaged[pos] = static_cast<char>(damaged[pos] ^ 0x08);
        if (damaged[pos] == '\n' || clean[pos] == '\n')
            continue;  // Line-structure damage, not a data flip.
        std::istringstream is(damaged);
        unsigned malformed = 0;
        readFaultLog(is, &malformed);
        EXPECT_GE(malformed, 1u) << "undetected flip at byte " << pos;
    }

    // And the pristine log still verifies.
    std::istringstream is(clean);
    unsigned malformed = 7;
    const auto restored = readFaultLog(is, &malformed);
    EXPECT_EQ(malformed, 0u);
    EXPECT_EQ(restored.size(), 1u);
}

TEST(FaultLog, RebootRestoresRepairAndData)
{
    // "Boot 1": discover + repair a fault, write data, persist the log.
    ControllerConfig config;
    uint8_t data[64];
    for (unsigned i = 0; i < 64; ++i)
        data[i] = static_cast<uint8_t>(i * 5 + 1);
    LineCoord coord{0, 0, 4, 900, 3};

    std::string log_text;
    {
        RelaxFaultController controller(config);
        const uint64_t pa = controller.addressMap().encode(coord);
        controller.write(pa, data);

        FaultRecord fault;
        fault.persistence = Persistence::Permanent;
        RegionCluster cluster;
        cluster.bankMask = 1u << 4;
        cluster.rows = RowSet::of({900});
        cluster.cols = ColSet::allCols();
        fault.parts.push_back({0, 6, FaultRegion({cluster})});
        ASSERT_TRUE(controller.reportFault(fault));

        std::ostringstream os;
        writeFaultLog(controller.faults().faults(), os);
        log_text = os.str();
    }

    // "Boot 2": fresh controller (volatile repair state gone); the
    // DRAM content is modelled as surviving (it is the fault map and
    // repair state we are restoring, not memory contents).
    RelaxFaultController controller(config);
    const uint64_t pa = controller.addressMap().encode(coord);
    controller.write(pa, data);  // Re-materialize the line.

    std::istringstream is(log_text);
    const RestoreReport report = restoreFaultLog(controller, is);
    EXPECT_EQ(report.faultsRestored, 1u);
    EXPECT_EQ(report.faultsRepaired, 1u);
    EXPECT_TRUE(controller.repair().bankFlagged(0, 4));

    uint8_t out[64];
    EXPECT_EQ(controller.read(pa, out), EccStatus::Ok);
    EXPECT_EQ(std::memcmp(out, data, 64), 0);
}

} // namespace
} // namespace relaxfault
