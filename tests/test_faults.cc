/**
 * @file
 * Tests for the fault model: regions and their algebra, FIT rates, the
 * extent samplers, the population sampler with acceleration (Eq. 1), and
 * the fault-set probe.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "faults/fault_model.h"
#include "faults/fault_set.h"
#include "faults/rates.h"

namespace relaxfault {
namespace {

DramGeometry
geom()
{
    return DramGeometry{};
}

FaultRegion
bitRegion(unsigned bank, uint32_t row, uint16_t col, uint32_t mask)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::of({col});
    cluster.bitMask = mask;
    return FaultRegion({cluster});
}

TEST(RowSet, CountContainsIntersect)
{
    const RowSet a = RowSet::of({5, 1, 3, 3});
    EXPECT_EQ(a.count(geom()), 3u);
    EXPECT_TRUE(a.contains(3));
    EXPECT_FALSE(a.contains(2));
    const RowSet b = RowSet::of({3, 4, 5});
    EXPECT_EQ(RowSet::intersectCount(a, b, geom()), 2u);
    const RowSet all = RowSet::allRows();
    EXPECT_EQ(RowSet::intersectCount(all, b, geom()), 3u);
    EXPECT_EQ(all.count(geom()), geom().rowsPerBank);
}

TEST(ColSet, CountContainsIntersect)
{
    const ColSet a = ColSet::of({7});
    const ColSet b = ColSet::allCols();
    EXPECT_EQ(ColSet::intersectCount(a, b, geom()), 1u);
    EXPECT_TRUE(b.contains(200));
    EXPECT_FALSE(a.contains(6));
}

TEST(Region, SingleBitCounts)
{
    const FaultRegion region = bitRegion(2, 100, 50, 1u << 9);
    EXPECT_EQ(region.lineSliceCount(geom()), 1u);
    EXPECT_EQ(region.remapUnitCount(geom()), 1u);
    EXPECT_FALSE(region.massive());
    EXPECT_EQ(region.sliceMask(2, 100, 50), 1u << 9);
    EXPECT_EQ(region.sliceMask(2, 100, 51), 0u);
    EXPECT_EQ(region.sliceMask(3, 100, 50), 0u);
    EXPECT_DOUBLE_EQ(region.symbolFraction(), 0.25);
}

TEST(Region, FullRowCounts)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << 1;
    cluster.rows = RowSet::of({77});
    cluster.cols = ColSet::allCols();
    const FaultRegion region({cluster});
    // 256 column blocks; 16 blocks per 64B remap unit -> 16 units.
    EXPECT_EQ(region.lineSliceCount(geom()), 256u);
    EXPECT_EQ(region.remapUnitCount(geom()), 16u);
    EXPECT_DOUBLE_EQ(region.symbolFraction(), 1.0);
}

TEST(Region, ColumnCounts)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << 0;
    cluster.rows = RowSet::of({10, 20, 30, 40});
    cluster.cols = ColSet::of({100});
    cluster.bitMask = 1u << 3;
    const FaultRegion region({cluster});
    EXPECT_EQ(region.lineSliceCount(geom()), 4u);
    EXPECT_EQ(region.remapUnitCount(geom()), 4u);
    EXPECT_EQ(region.distinctRowCount(geom()), 4u);
}

TEST(Region, MassiveBank)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << 4;
    cluster.rows = RowSet::allRows();
    cluster.cols = ColSet::allCols();
    const FaultRegion region({cluster});
    EXPECT_TRUE(region.massive());
    EXPECT_EQ(region.lineSliceCount(geom()),
              uint64_t{geom().rowsPerBank} * geom().colBlocksPerRow);
    EXPECT_EQ(region.bankCount(), 1u);
}

TEST(Region, RemapUnitsGroupColumns)
{
    // Columns 0 and 15 share remap unit 0; column 16 is unit 1.
    RegionCluster cluster;
    cluster.bankMask = 1;
    cluster.rows = RowSet::of({1});
    cluster.cols = ColSet::of({0, 15, 16});
    const FaultRegion region({cluster});
    EXPECT_EQ(region.lineSliceCount(geom()), 3u);
    EXPECT_EQ(region.remapUnitCount(geom()), 2u);
}

TEST(Region, ForEachSliceVisitsAll)
{
    RegionCluster cluster;
    cluster.bankMask = (1u << 1) | (1u << 3);
    cluster.rows = RowSet::of({5, 6});
    cluster.cols = ColSet::of({9});
    const FaultRegion region({cluster});
    unsigned visits = 0;
    region.forEachSlice(geom(), [&](unsigned bank, uint32_t row,
                                    uint16_t col) {
        EXPECT_TRUE(bank == 1 || bank == 3);
        EXPECT_TRUE(row == 5 || row == 6);
        EXPECT_EQ(col, 9);
        ++visits;
    });
    EXPECT_EQ(visits, 4u);
}

TEST(Region, PairIntersection)
{
    const FaultRegion a = bitRegion(2, 100, 50, 0xff);
    const FaultRegion b = bitRegion(2, 100, 50, 0xff00);
    const FaultRegion c = bitRegion(2, 101, 50, 0xff);
    EXPECT_EQ(FaultRegion::intersectLineCount(a, b, geom()), 1u);
    EXPECT_EQ(FaultRegion::intersectLineCount(a, c, geom()), 0u);
}

TEST(Region, SharesSymbol)
{
    EXPECT_TRUE(FaultRegion::sharesSymbol(0x1, 0x80));     // Symbol 0.
    EXPECT_FALSE(FaultRegion::sharesSymbol(0x1, 0x100));   // 0 vs 1.
    EXPECT_TRUE(FaultRegion::sharesSymbol(0xffffffff, 0x01000000));
}

TEST(Region, CodewordIntersectRespectsSymbols)
{
    // Same slice, but disjoint symbols: no codeword-level overlap.
    const FaultRegion a = bitRegion(1, 10, 10, 0x000000ff);
    const FaultRegion b = bitRegion(1, 10, 10, 0x0000ff00);
    const FaultRegion c = bitRegion(1, 10, 10, 0x000000f0);
    EXPECT_EQ(FaultRegion::codewordIntersect(a, b, geom())
                  .lineSliceCount(geom()),
              0u);
    EXPECT_EQ(FaultRegion::codewordIntersect(a, c, geom())
                  .lineSliceCount(geom()),
              1u);
}

TEST(Region, CodewordIntersectComposesForTriples)
{
    // Bank fault (full mask) intersected with two single-bit faults in
    // the same line and symbol: triple overlap survives composition.
    RegionCluster bank_cluster;
    bank_cluster.bankMask = 1u << 2;
    bank_cluster.rows = RowSet::of({100});
    bank_cluster.cols = ColSet::allCols();
    const FaultRegion bank_fault({bank_cluster});
    const FaultRegion bit1 = bitRegion(2, 100, 50, 0x1);
    const FaultRegion bit2 = bitRegion(2, 100, 50, 0x2);
    const FaultRegion pair =
        FaultRegion::codewordIntersect(bank_fault, bit1, geom());
    EXPECT_EQ(pair.lineSliceCount(geom()), 1u);
    const FaultRegion triple =
        FaultRegion::codewordIntersect(pair, bit2, geom());
    EXPECT_EQ(triple.lineSliceCount(geom()), 1u);

    // A third fault in a different symbol breaks the chain.
    const FaultRegion other_symbol = bitRegion(2, 100, 50, 0x100);
    EXPECT_EQ(FaultRegion::codewordIntersect(pair, other_symbol, geom())
                  .lineSliceCount(geom()),
              0u);
}

TEST(Rates, CieloTotalsMatchTable2)
{
    const FitRates rates = FitRates::cielo();
    EXPECT_NEAR(rates.totalTransient(), 20.3, 1e-9);
    EXPECT_NEAR(rates.totalPermanent(), 20.0, 1e-9);
    EXPECT_DOUBLE_EQ(rates.permanent(FaultMode::SingleBit), 13.0);
    EXPECT_DOUBLE_EQ(rates.transient(FaultMode::MultiRank), 0.2);
}

TEST(Rates, ModeNames)
{
    EXPECT_STREQ(faultModeName(FaultMode::SingleRow), "single-row");
    EXPECT_STREQ(faultModeName(FaultMode::MultiBank), "multi-bank");
}

class GeometrySamplerTest : public ::testing::Test
{
  protected:
    DramGeometry geometry_;
    FaultGeometryParams params_;
    FaultGeometrySampler sampler_{geometry_, params_};
    Rng rng_{2024};
};

TEST_F(GeometrySamplerTest, SingleBitIsOneSlice)
{
    for (int i = 0; i < 200; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::SingleBit, rng_);
        EXPECT_EQ(region.lineSliceCount(geometry_), 1u);
        EXPECT_FALSE(region.massive());
    }
}

TEST_F(GeometrySamplerTest, SingleRowIsFullRow)
{
    for (int i = 0; i < 100; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::SingleRow, rng_);
        EXPECT_EQ(region.lineSliceCount(geometry_), 256u);
        EXPECT_EQ(region.remapUnitCount(geometry_), 16u);
    }
}

TEST_F(GeometrySamplerTest, ColumnStaysInOneSubarray)
{
    for (int i = 0; i < 200; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::SingleColumn, rng_);
        ASSERT_EQ(region.clusters().size(), 1u);
        const auto &cluster = region.clusters()[0];
        ASSERT_FALSE(cluster.rows.all);
        ASSERT_FALSE(cluster.rows.rows.empty());
        const uint32_t base =
            cluster.rows.rows.front() / params_.subarrayRows;
        for (const auto row : cluster.rows.rows)
            EXPECT_EQ(row / params_.subarrayRows, base);
        EXPECT_LE(cluster.rows.rows.size(), params_.subarrayRows);
        EXPECT_EQ(cluster.cols.cols.size(), 1u);
    }
}

TEST_F(GeometrySamplerTest, ColumnRowCountMeanRoughlyCalibrated)
{
    RunningStat stat;
    for (int i = 0; i < 4000; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::SingleColumn, rng_);
        stat.add(static_cast<double>(
            region.clusters()[0].rows.rows.size()));
    }
    // Geometric with the configured mean, truncated by the subarray
    // size and by duplicate draws; allow a generous band.
    EXPECT_GT(stat.mean(), 0.55 * params_.columnRowsMean);
    EXPECT_LT(stat.mean(), 1.15 * params_.columnRowsMean);
}

TEST_F(GeometrySamplerTest, BankExtentMixture)
{
    unsigned massive = 0;
    unsigned small = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::SingleBank, rng_);
        EXPECT_EQ(region.bankCount(), 1u);
        if (region.massive())
            ++massive;
        else if (region.distinctRowCount(geometry_) <= 64)
            ++small;
    }
    const double massive_frac = static_cast<double>(massive) / trials;
    const double expected_massive =
        1.0 - params_.bankSmallProb - params_.bankMediumProb;
    EXPECT_NEAR(massive_frac, expected_massive, 0.03);
    EXPECT_GT(small, trials / 3);
}

TEST_F(GeometrySamplerTest, MultiBankSpansSeveralBanks)
{
    for (int i = 0; i < 300; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::MultiBank, rng_);
        EXPECT_GE(region.bankCount(), params_.multiBankMin);
        EXPECT_LE(region.bankCount(), geometry_.banksPerDevice);
    }
}

TEST_F(GeometrySamplerTest, MultiRankPinFaultIsMassiveSingleBit)
{
    unsigned massive = 0;
    const int trials = 2000;
    for (int i = 0; i < trials; ++i) {
        const FaultRegion region =
            sampler_.sample(FaultMode::MultiRank, rng_);
        if (region.massive()) {
            ++massive;
            EXPECT_DOUBLE_EQ(region.clusters()[0].bitMask == 0xffffffffu
                                 ? 1.0
                                 : region.symbolFraction(),
                             0.25);
        }
    }
    EXPECT_NEAR(static_cast<double>(massive) / trials,
                params_.multiRankMassiveProb, 0.04);
}

TEST(FaultModelConfig, AdjustmentFactorMatchesEq1)
{
    FaultModelConfig config;
    // Defaults: 0.1% + 0.1% at 100x -> ~0.8 for the rest.
    EXPECT_NEAR(config.adjustmentFactor(), (1.0 - 0.2) / 0.998, 1e-9);
    config.accelerationEnabled = false;
    EXPECT_DOUBLE_EQ(config.adjustmentFactor(), 1.0);
}

TEST(FaultSampler, ExpectedFaultCountMatchesAnalytic)
{
    FaultModelConfig config;
    config.accelerationEnabled = false;
    const NodeFaultSampler sampler(config);
    // 40.3 FIT/device * 144 devices * 52596h.
    const double expected = 40.3e-9 * 144 * config.missionHours;
    EXPECT_NEAR(sampler.expectedFaultsPerNode(), expected, 1e-6);

    Rng rng(77);
    RunningStat stat;
    for (int i = 0; i < 30000; ++i)
        stat.add(static_cast<double>(sampler.sampleNode(rng).faults.size()));
    EXPECT_NEAR(stat.mean(), expected, 0.01);
}

TEST(FaultSampler, AccelerationPreservesPopulationMean)
{
    FaultModelConfig config;  // Acceleration on.
    const NodeFaultSampler sampler(config);
    Rng rng(78);
    RunningStat stat;
    for (int i = 0; i < 60000; ++i)
        stat.add(static_cast<double>(sampler.sampleNode(rng).faults.size()));
    const double expected = sampler.expectedFaultsPerNode();
    EXPECT_NEAR(stat.mean(), expected, expected * 0.1);
}

TEST(FaultSampler, FitScaleMultiplies)
{
    FaultModelConfig config;
    config.accelerationEnabled = false;
    config.fitScale = 10.0;
    const NodeFaultSampler sampler(config);
    Rng rng(79);
    RunningStat stat;
    for (int i = 0; i < 10000; ++i)
        stat.add(static_cast<double>(sampler.sampleNode(rng).faults.size()));
    EXPECT_NEAR(stat.mean(), sampler.expectedFaultsPerNode(), 0.1);
    EXPECT_NEAR(stat.mean(), 10 * 40.3e-9 * 144 * config.missionHours,
                0.1);
}

TEST(FaultSampler, ModeMixMatchesRates)
{
    FaultModelConfig config;
    config.accelerationEnabled = false;
    config.fitScale = 50.0;  // More faults per node for statistics.
    const NodeFaultSampler sampler(config);
    Rng rng(80);
    uint64_t counts[kFaultModeCount] = {};
    uint64_t permanent = 0;
    uint64_t total = 0;
    for (int i = 0; i < 4000; ++i) {
        for (const auto &fault : sampler.sampleNode(rng).faults) {
            ++counts[static_cast<unsigned>(fault.mode)];
            permanent += fault.permanent();
            ++total;
        }
    }
    const FitRates rates = FitRates::cielo();
    const double bit_share =
        (rates.transient(FaultMode::SingleBit) +
         rates.permanent(FaultMode::SingleBit)) / rates.total();
    EXPECT_NEAR(static_cast<double>(
                    counts[static_cast<unsigned>(FaultMode::SingleBit)]) /
                    total,
                bit_share, 0.02);
    EXPECT_NEAR(static_cast<double>(permanent) / total,
                rates.totalPermanent() / rates.total(), 0.02);
}

TEST(FaultSampler, TimesSortedWithinMission)
{
    FaultModelConfig config;
    config.fitScale = 30.0;
    const NodeFaultSampler sampler(config);
    Rng rng(81);
    for (int i = 0; i < 500; ++i) {
        const NodeSample node = sampler.sampleNode(rng);
        double last = 0.0;
        for (const auto &fault : node.faults) {
            EXPECT_GE(fault.timeHours, last);
            EXPECT_LE(fault.timeHours, config.missionHours);
            last = fault.timeHours;
        }
    }
}

TEST(FaultSampler, ExactPathAgreesOnMean)
{
    FaultModelConfig config;
    config.accelerationEnabled = false;
    config.fitScale = 5.0;
    const NodeFaultSampler sampler(config);
    Rng rng_fast(90);
    Rng rng_exact(91);
    RunningStat fast;
    RunningStat exact;
    for (int i = 0; i < 4000; ++i) {
        fast.add(static_cast<double>(
            sampler.sampleNode(rng_fast).faults.size()));
        exact.add(static_cast<double>(
            sampler.sampleNodeExact(rng_exact).faults.size()));
    }
    EXPECT_NEAR(fast.mean(), exact.mean(),
                4 * (fast.stderror() + exact.stderror()) + 0.02);
}

TEST(FaultSampler, MultiRankMirrorsPartnerDimm)
{
    FaultModelConfig config;
    config.accelerationEnabled = false;
    config.fitScale = 200.0;
    const NodeFaultSampler sampler(config);
    Rng rng(92);
    bool found = false;
    for (int i = 0; i < 2000 && !found; ++i) {
        for (const auto &fault : sampler.sampleNode(rng).faults) {
            if (fault.mode != FaultMode::MultiRank)
                continue;
            found = true;
            ASSERT_EQ(fault.parts.size(), 2u);
            EXPECT_EQ(fault.parts[0].dimm ^ 1, fault.parts[1].dimm);
            EXPECT_EQ(fault.parts[0].device, fault.parts[1].device);
        }
    }
    EXPECT_TRUE(found);
}

TEST(FaultSampler, IntermittentRatesWithinRange)
{
    FaultModelConfig config;
    config.fitScale = 50.0;
    config.hardPermanentFraction = 0.0;  // All intermittent.
    const NodeFaultSampler sampler(config);
    Rng rng(93);
    unsigned seen = 0;
    for (int i = 0; i < 500; ++i) {
        for (const auto &fault : sampler.sampleNode(rng).faults) {
            if (!fault.permanent())
                continue;
            ++seen;
            EXPECT_FALSE(fault.hardPermanent);
            EXPECT_GE(fault.activationRatePerHour,
                      config.intermittentMinRatePerHour * 0.999);
            EXPECT_LE(fault.activationRatePerHour,
                      config.intermittentMaxRatePerHour * 1.001);
        }
    }
    EXPECT_GT(seen, 100u);
}

TEST(FaultSetTest, ProbeAppliesPermanentFaultsOnly)
{
    FaultSet set(geom());
    FaultRecord permanent;
    permanent.persistence = Persistence::Permanent;
    permanent.parts.push_back({3, 7, bitRegion(1, 5, 9, 0xf)});
    FaultRecord transient;
    transient.persistence = Persistence::Transient;
    transient.parts.push_back({3, 7, bitRegion(1, 6, 9, 0xf0)});
    set.addFault(permanent);
    set.addFault(transient);

    DeviceCoord coord{3, 7, 1, 5, 9};
    EXPECT_EQ(set.probe(coord).mask, 0xfu);
    coord.row = 6;
    EXPECT_EQ(set.probe(coord).mask, 0u);  // Transient not stuck.
    coord.device = 8;
    EXPECT_EQ(set.probe(coord).mask, 0u);
}

TEST(FaultSetTest, ProbeStuckValueDeterministic)
{
    FaultSet set(geom());
    FaultRecord fault;
    fault.parts.push_back({0, 0, bitRegion(0, 0, 0, 0xffffffff)});
    set.addFault(fault);
    const DeviceCoord coord{0, 0, 0, 0, 0};
    EXPECT_EQ(set.probe(coord).value, set.probe(coord).value);
    EXPECT_EQ(set.probe(coord).mask, 0xffffffffu);
}

TEST(FaultSetTest, RepairFlagAndClear)
{
    FaultSet set(geom());
    FaultRecord fault;
    fault.parts.push_back({0, 0, bitRegion(0, 0, 0, 1)});
    const size_t id = set.addFault(fault);
    EXPECT_FALSE(set.repaired(id));
    set.setRepaired(id, true);
    EXPECT_TRUE(set.repaired(id));
    set.clear();
    EXPECT_TRUE(set.faults().empty());
}

} // namespace
} // namespace relaxfault
