/**
 * @file
 * Determinism and crash-recovery tests for the fleet-scale engine.
 *
 * The load-bearing invariants, all checked with exact double equality:
 *
 *  - Lazy (O(faulty) skip-ahead) and eager (whole-fleet) modes produce
 *    bit-identical `LifetimeSummary` and telemetry — at 16,384 nodes
 *    per system and at multiple thread counts (the issue's acceptance
 *    bar for the lazy node-state optimization).
 *  - Folding `runTrialRange` splits back together reproduces
 *    `runTrials` bit-for-bit — the shard invariance the worker pool
 *    builds on.
 *  - The multi-process worker pool (forked workers over the shared
 *    shard ring) matches the in-process run at any worker count, on
 *    both the fleet and the classic engine, including after a worker
 *    is genuinely SIGKILLed holding a shard lease and the run is
 *    resumed from the surviving worker checkpoints.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fs.h"
#include "common/process.h"
#include "common/signal_guard.h"
#include "fleet/fleet_sim.h"
#include "fleet/worker_pool.h"
#include "repair/relaxfault_repair.h"
#include "telemetry/metrics.h"

namespace relaxfault {
namespace {

LifetimeConfig
fleetConfig(unsigned nodes, double fit_scale = 1.0)
{
    LifetimeConfig config;
    config.nodesPerSystem = nodes;
    config.faultModel.fitScale = fit_scale;
    config.policy = ReplacePolicy::AfterDue;
    return config;
}

FleetSimulator::MechanismFactory
relaxFactory(const LifetimeConfig &config)
{
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    return [geometry, llc] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{4, 32768}, true);
    };
}

void
expectIdentical(const RunningStat &a, const RunningStat &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.ci95(), b.ci95());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectIdentical(const LifetimeSummary &a, const LifetimeSummary &b)
{
    expectIdentical(a.faultyNodes, b.faultyNodes);
    expectIdentical(a.multiDeviceFaultDimms, b.multiDeviceFaultDimms);
    expectIdentical(a.dues, b.dues);
    expectIdentical(a.sdcs, b.sdcs);
    expectIdentical(a.replacements, b.replacements);
    expectIdentical(a.repairedFaults, b.repairedFaults);
    expectIdentical(a.permanentFaults, b.permanentFaults);
    expectIdentical(a.fullyRepairedNodes, b.fullyRepairedNodes);
    expectIdentical(a.budgetExhausted, b.budgetExhausted);
    expectIdentical(a.degradedToRetirement, b.degradedToRetirement);
    expectIdentical(a.degradedDues, b.degradedDues);
    expectIdentical(a.failStops, b.failStops);
}

/** Exact telemetry match, minus the wall-clock trial histogram. */
void
expectIdenticalTelemetry(const MetricsSnapshot &a,
                         const MetricsSnapshot &b)
{
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i].first, b.counters[i].first);
        EXPECT_EQ(a.counters[i].second, b.counters[i].second)
            << "counter " << a.counters[i].first;
    }
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (size_t i = 0; i < a.histograms.size(); ++i) {
        EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
        if (a.histograms[i].first == "sim.trial_us")
            continue;
        const Log2HistogramSnapshot &ha = a.histograms[i].second;
        const Log2HistogramSnapshot &hb = b.histograms[i].second;
        EXPECT_EQ(ha.count, hb.count) << a.histograms[i].first;
        EXPECT_EQ(ha.sum, hb.sum) << a.histograms[i].first;
        for (size_t bkt = 0; bkt < ha.buckets.size(); ++bkt)
            EXPECT_EQ(ha.buckets[bkt], hb.buckets[bkt])
                << a.histograms[i].first << " bucket " << bkt;
    }
}

FleetTrialOptions
fleetRun(FleetMode mode, unsigned threads,
         MetricRegistry *metrics = nullptr)
{
    FleetTrialOptions options;
    options.mode = mode;
    options.parallel.threads = threads;
    options.metrics = metrics;
    return options;
}

CampaignFingerprint
fleetFingerprint(uint64_t seed, uint64_t trials, unsigned shards)
{
    CampaignFingerprint fingerprint;
    fingerprint.campaign = "test_fleet";
    fingerprint.seed = seed;
    fingerprint.trials = trials;
    fingerprint.shards = shards;
    fingerprint.config = "fleet";
    return fingerprint;
}

std::string
tempBase(const std::string &name)
{
    return ::testing::TempDir() + "relaxfault_fleet_" + name + "_" +
           std::to_string(::getpid()) + ".ckpt";
}

void
removeWorkerLogs(const std::string &base)
{
    for (unsigned slot = 0; slot < WorkerCampaignRunner::kMaxWorkers;
         ++slot)
        std::remove(
            WorkerCampaignRunner::workerLogPath(base, slot).c_str());
}

// ---------------------------------------------------------------------
// Sampler distribution shape.

TEST(FleetSampler, ZeroFaultProbabilityIsTheCommonCase)
{
    // ~0.78 at nominal FIT: arrivals count transient faults too, so
    // the skip rate is lower than the permanent-faulty-node rate
    // suggests — but still the majority case the lazy path feeds on.
    const FleetNodeSampler nominal(fleetConfig(1).faultModel);
    EXPECT_GT(nominal.zeroFaultProbability(), 0.5);
    EXPECT_LT(nominal.zeroFaultProbability(), 1.0);
    // More FIT => fewer fault-free nodes.
    const FleetNodeSampler scaled(fleetConfig(1, 10.0).faultModel);
    EXPECT_LT(scaled.zeroFaultProbability(),
              nominal.zeroFaultProbability());
}

TEST(FleetSampler, ObservedSkipRateMatchesPrediction)
{
    const FaultModelConfig config = fleetConfig(1, 10.0).faultModel;
    const FleetNodeSampler sampler(config);
    constexpr unsigned kNodes = 200000;
    NodeSample sample;
    unsigned zero = 0;
    for (unsigned n = 0; n < kNodes; ++n) {
        Rng rng = Rng::forkAt(42, n);
        if (sampler.sampleNodeInto(sample, rng) == 0) {
            ++zero;
            EXPECT_TRUE(sample.faults.empty());
        }
    }
    const double observed = static_cast<double>(zero) / kNodes;
    // ~4 sigma band around the analytic zero-fault probability.
    const double p = sampler.zeroFaultProbability();
    const double sigma = std::sqrt(p * (1.0 - p) / kNodes);
    EXPECT_NEAR(observed, p, 4.0 * sigma);
}

// ---------------------------------------------------------------------
// Lazy == eager, bit for bit.

TEST(Fleet, LazyAndEagerBitIdenticalAt16kNodes)
{
    const LifetimeConfig config = fleetConfig(16384);
    const FleetSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 4;
    constexpr uint64_t kSeed = 1206;

    MetricRegistry lazy_metrics;
    const LifetimeSummary lazy = simulator.runTrials(
        kTrials, factory, kSeed,
        fleetRun(FleetMode::Lazy, 1, &lazy_metrics));
    ASSERT_GT(lazy.faultyNodes.mean(), 0.0);

    for (const unsigned threads : {1u, 4u}) {
        MetricRegistry eager_metrics;
        const LifetimeSummary eager = simulator.runTrials(
            kTrials, factory, kSeed,
            fleetRun(FleetMode::Eager, threads, &eager_metrics));
        expectIdentical(lazy, eager);
        expectIdenticalTelemetry(lazy_metrics.snapshot(),
                                 eager_metrics.snapshot());

        MetricRegistry lazy_mt_metrics;
        const LifetimeSummary lazy_mt = simulator.runTrials(
            kTrials, factory, kSeed,
            fleetRun(FleetMode::Lazy, threads, &lazy_mt_metrics));
        expectIdentical(lazy, lazy_mt);
        expectIdenticalTelemetry(lazy_metrics.snapshot(),
                                 lazy_mt_metrics.snapshot());
    }
}

TEST(Fleet, LazyAndEagerBitIdenticalWithAcceleratedFleet)
{
    // The accelerated-class CDF path (node and DIMM acceleration flags)
    // must skip-ahead identically too.
    LifetimeConfig config = fleetConfig(4096, 10.0);
    config.faultModel.accelerationEnabled = true;
    config.faultModel.accelerationFactor = 100.0;
    config.faultModel.acceleratedNodeFraction = 0.01;
    config.faultModel.acceleratedDimmFraction = 0.01;
    const FleetSimulator simulator(config);
    const auto factory = relaxFactory(config);

    const LifetimeSummary lazy = simulator.runTrials(
        6, factory, 77, fleetRun(FleetMode::Lazy, 2));
    const LifetimeSummary eager = simulator.runTrials(
        6, factory, 77, fleetRun(FleetMode::Eager, 2));
    ASSERT_GT(lazy.faultyNodes.mean(), 0.0);
    expectIdentical(lazy, eager);
}

TEST(Fleet, TrialRangeSplitsFoldBackToRunTrials)
{
    const LifetimeConfig config = fleetConfig(1024, 10.0);
    const FleetSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 9;
    constexpr uint64_t kSeed = 5;

    const LifetimeSummary straight = simulator.runTrials(
        kTrials, factory, kSeed, fleetRun(FleetMode::Lazy, 1));

    for (const unsigned shards : {1u, 2u, 4u, 9u}) {
        LifetimeSummary folded;
        for (unsigned shard = 0; shard < shards; ++shard) {
            const uint64_t first =
                CampaignRunner::shardFirstTrial(kTrials, shards, shard);
            const uint64_t end = CampaignRunner::shardFirstTrial(
                kTrials, shards, shard + 1);
            const std::vector<LifetimeMetrics> range =
                simulator.runTrialRange(
                    first, static_cast<unsigned>(end - first), factory,
                    kSeed, fleetRun(FleetMode::Lazy, 2));
            for (const LifetimeMetrics &m : range)
                folded.addTrial(m);
        }
        expectIdentical(straight, folded);
    }
}

// ---------------------------------------------------------------------
// Worker pool: forked processes == in-process, bit for bit.

TEST(FleetWorkers, FleetEngineMatchesInProcessAtOneAndTwoWorkers)
{
    SignalGuard::reset();
    const LifetimeConfig config = fleetConfig(2048, 10.0);
    const FleetSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 8;
    constexpr uint64_t kSeed = 31;

    MetricRegistry straight_metrics;
    const LifetimeSummary straight = simulator.runTrials(
        kTrials, factory, kSeed,
        fleetRun(FleetMode::Lazy, 1, &straight_metrics));

    for (const unsigned workers : {1u, 2u}) {
        WorkerOptions options;
        options.workers = workers;
        options.shards = 4;
        WorkerCampaignRunner pool(fleetFingerprint(kSeed, kTrials, 4),
                                  options);
        MetricRegistry metrics;
        const CampaignResult result = pool.runUnitFleet(
            "fleet", simulator, factory, kTrials, kSeed,
            fleetRun(FleetMode::Lazy, 1, &metrics));
        ASSERT_FALSE(result.interrupted);
        EXPECT_EQ(result.shardsRun, 4u);
        expectIdentical(straight, result.summary);
        expectIdenticalTelemetry(straight_metrics.snapshot(),
                                 metrics.snapshot());
        // Every worker stamped its peak RSS; the pool kept the max.
        EXPECT_GT(pool.workerPeakRssBytes(), 0);
    }
}

TEST(FleetWorkers, ClassicEngineMatchesStraightRun)
{
    SignalGuard::reset();
    LifetimeConfig config = fleetConfig(128, 10.0);
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 10;
    constexpr uint64_t kSeed = 99;

    MetricRegistry straight_metrics;
    TrialRunOptions straight_run;
    straight_run.parallel.threads = 1;
    straight_run.metrics = &straight_metrics;
    const LifetimeSummary straight =
        simulator.runTrials(kTrials, factory, kSeed, straight_run);

    WorkerOptions options;
    options.workers = 2;
    options.shards = 5;
    WorkerCampaignRunner pool(fleetFingerprint(kSeed, kTrials, 5),
                              options);
    MetricRegistry metrics;
    TrialRunOptions run;
    run.parallel.threads = 1;
    run.metrics = &metrics;
    const CampaignResult result = pool.runUnit(
        "classic", simulator, factory, kTrials, kSeed, run);
    ASSERT_FALSE(result.interrupted);
    expectIdentical(straight, result.summary);
    expectIdenticalTelemetry(straight_metrics.snapshot(),
                             metrics.snapshot());
}

TEST(FleetWorkers, TemporaryCheckpointDirIsRemovedOnDestruction)
{
    SignalGuard::reset();
    const LifetimeConfig config = fleetConfig(256, 10.0);
    const FleetSimulator simulator(config);
    std::string dir;
    {
        WorkerOptions options;  // Empty checkpointPath: private scratch.
        options.workers = 2;
        options.shards = 2;
        WorkerCampaignRunner pool(fleetFingerprint(1, 4, 2), options);
        const std::string &base = pool.checkpointBasePath();
        EXPECT_EQ(base.rfind("/tmp/relaxfault_fleet.", 0), 0u) << base;
        dir = base.substr(0, base.rfind('/'));
        const CampaignResult result = pool.runUnitFleet(
            "fleet", simulator, relaxFactory(config), 4, 1,
            fleetRun(FleetMode::Lazy, 1));
        ASSERT_FALSE(result.interrupted);
        EXPECT_TRUE(fileExists(
            WorkerCampaignRunner::workerLogPath(base, 0)));
    }
    // fileExists is regular-file-only; probe the directory directly.
    EXPECT_NE(::access(dir.c_str(), F_OK), 0) << dir;
}

// ---------------------------------------------------------------------
// Crash recovery: a worker genuinely SIGKILLed holding a shard lease.

constexpr unsigned kKillTrials = 10;
constexpr uint64_t kKillSeed = 1234;

/**
 * Runs a 2-worker pool where worker slot 0 SIGKILLs itself right after
 * popping its first shard — before running or committing it (the lost
 * lease worst case). With maxRounds=1 the pool cannot recover and dies
 * fatally (exit 1); in the rare schedule where worker 1 drains the
 * whole ring before worker 0 pops anything, the run completes cleanly
 * instead (exit 0). Either way the committed worker logs must be
 * resumable.
 */
int
runKilledPoolChild(const std::string &base, unsigned shards)
{
    SignalGuard::reset();
    const LifetimeConfig config = fleetConfig(512, 10.0);
    const FleetSimulator simulator(config);
    WorkerOptions options;
    options.workers = 2;
    options.checkpointPath = base;
    options.shards = shards;
    options.maxRounds = 1;
    options.killBeforeCommit = 1;
    WorkerCampaignRunner pool(
        fleetFingerprint(kKillSeed, kKillTrials, shards), options);
    // Telemetry on: committed shard records must carry their counters
    // so the resumed run can merge them (resume inherits the original
    // run's telemetry choice).
    MetricRegistry metrics;
    pool.runUnitFleet("fleet", simulator, relaxFactory(config),
                      kKillTrials, kKillSeed,
                      fleetRun(FleetMode::Lazy, 1, &metrics));
    return 0;
}

class FleetWorkerKillResume : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FleetWorkerKillResume, ResumeAfterSigkillMatchesStraightRun)
{
    const unsigned shards = GetParam();
    SignalGuard::reset();
    const std::string base =
        tempBase("kill_s" + std::to_string(shards));
    removeWorkerLogs(base);

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: the pool parent whose worker 0 dies by real
        // SIGKILL. _exit so the parent's gtest teardown never runs
        // twice.
        _exit(runKilledPoolChild(base, shards));
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_TRUE(WEXITSTATUS(status) == 1 || WEXITSTATUS(status) == 0)
        << "unexpected exit " << WEXITSTATUS(status);

    // Resume from the surviving worker checkpoints with a healthy pool.
    const LifetimeConfig config = fleetConfig(512, 10.0);
    const FleetSimulator simulator(config);
    const auto factory = relaxFactory(config);
    WorkerOptions options;
    options.workers = 2;
    options.checkpointPath = base;
    options.resume = true;
    options.shards = shards;
    WorkerCampaignRunner pool(
        fleetFingerprint(kKillSeed, kKillTrials, shards), options);
    MetricRegistry metrics;
    const CampaignResult resumed = pool.runUnitFleet(
        "fleet", simulator, factory, kKillTrials, kKillSeed,
        fleetRun(FleetMode::Lazy, 1, &metrics));
    ASSERT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.shardsResumed + resumed.shardsRun, shards);

    MetricRegistry straight_metrics;
    const LifetimeSummary straight = simulator.runTrials(
        kKillTrials, factory, kKillSeed,
        fleetRun(FleetMode::Lazy, 1, &straight_metrics));
    expectIdentical(straight, resumed.summary);
    expectIdenticalTelemetry(straight_metrics.snapshot(),
                             metrics.snapshot());
    removeWorkerLogs(base);
}

// 2 workers x >= 2 shard counts, per the acceptance criteria.
INSTANTIATE_TEST_SUITE_P(TwoWorkers, FleetWorkerKillResume,
                         ::testing::Values(3u, 5u));

TEST(FleetWorkersDeathTest, ExhaustedRoundsWithLostShardIsFatal)
{
    SignalGuard::reset();
    const std::string base = tempBase("rounds");
    removeWorkerLogs(base);
    const LifetimeConfig config = fleetConfig(256, 10.0);
    const FleetSimulator simulator(config);
    // A single worker that always dies before committing: round 1 loses
    // the lease deterministically, and maxRounds=1 forbids recovery.
    WorkerOptions options;
    options.workers = 1;
    options.checkpointPath = base;
    options.shards = 3;
    options.maxRounds = 1;
    options.killBeforeCommit = 1;
    WorkerCampaignRunner pool(fleetFingerprint(8, 6, 3), options);
    EXPECT_EXIT(pool.runUnitFleet("fleet", simulator,
                                  relaxFactory(config), 6, 8,
                                  fleetRun(FleetMode::Lazy, 1)),
                ::testing::ExitedWithCode(1), "still missing");
    removeWorkerLogs(base);
}

TEST(FleetWorkersDeathTest, ForeignWorkerLogIsNeverMerged)
{
    SignalGuard::reset();
    const std::string base = tempBase("foreign");
    removeWorkerLogs(base);
    const LifetimeConfig config = fleetConfig(256, 10.0);
    const FleetSimulator simulator(config);
    const auto factory = relaxFactory(config);
    {
        WorkerOptions options;
        options.workers = 1;
        options.checkpointPath = base;
        options.shards = 2;
        WorkerCampaignRunner pool(fleetFingerprint(1, 4, 2), options);
        const CampaignResult result = pool.runUnitFleet(
            "fleet", simulator, factory, 4, 1,
            fleetRun(FleetMode::Lazy, 1));
        ASSERT_FALSE(result.interrupted);
    }
    // Same path, different campaign (seed): the resume scan must refuse
    // the existing worker logs, not silently merge a different
    // experiment's shards.
    WorkerOptions options;
    options.workers = 1;
    options.checkpointPath = base;
    options.resume = true;
    options.shards = 2;
    WorkerCampaignRunner pool(fleetFingerprint(2, 4, 2), options);
    EXPECT_EXIT(pool.runUnitFleet("fleet", simulator, factory, 4, 2,
                                  fleetRun(FleetMode::Lazy, 1)),
                ::testing::ExitedWithCode(1), "different campaign");
    removeWorkerLogs(base);
}

// ---------------------------------------------------------------------
// Signal forwarding to live workers.

TEST(SignalGuardFleet, StopSignalIsForwardedToAdoptedChildren)
{
    // Run the whole scenario in a forked process so the signal games
    // never touch the test runner itself. Inside: a guard parent spawns
    // a worker that polls its own stop flag, adopts it, and SIGTERMs
    // itself — the handler must set the parent flag AND forward the
    // signal to the worker, which then exits with a marker code.
    const pid_t outer = spawnProcess([]() {
        SignalGuard::reset();
        SignalGuard::clearChildren();
        SignalGuard guard;
        const pid_t worker = spawnProcess([]() {
            SignalGuard::clearChildren();
            for (int i = 0; i < 20000 && !SignalGuard::stopRequested();
                 ++i)
                ::usleep(1000);
            return SignalGuard::stopRequested() ? 7 : 8;
        });
        SignalGuard::adoptChild(worker);
        if (SignalGuard::childCount() != 1)
            return 3;
        ::usleep(100000);  // Let the worker settle into its poll loop.
        ::kill(::getpid(), SIGTERM);
        const ProcessStatus status = waitProcess(worker);
        SignalGuard::releaseChild(worker);
        if (!SignalGuard::stopRequested())
            return 1;
        if (SignalGuard::stopSignal() != SIGTERM)
            return 2;
        if (SignalGuard::childCount() != 0)
            return 4;
        return status.exited && status.exitCode == 7 ? 0 : 5;
    });
    const ProcessStatus status = waitProcess(outer);
    EXPECT_TRUE(status.ok()) << "scenario exit code "
                             << status.exitCode;
}

TEST(FleetWorkers, PeakRssProbeReportsThisProcess)
{
    EXPECT_GT(peakRssBytes(), 0);
}

} // namespace
} // namespace relaxfault
