/**
 * @file
 * Cross-module integration tests: the statistical repair machinery and
 * the functional controller must agree; sampled faults must flow through
 * the whole stack (sampler -> repair -> datapath -> ECC) preserving
 * data; and the coverage evaluator's verdict must be reproducible from
 * the controller's behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/relaxfault_controller.h"
#include "faults/fault_model.h"
#include "repair/coverage.h"
#include "repair/freefault_repair.h"
#include "repair/relaxfault_repair.h"

namespace relaxfault {
namespace {

TEST(Integration, SampledFaultsThroughFullDatapath)
{
    // Sample realistic faulty nodes; for each repairable permanent
    // fault, the controller must keep previously-written data intact on
    // every line the fault touches (up to an enumeration cap).
    FaultModelConfig model_config;
    model_config.fitScale = 40.0;  // Densify faults for the test.
    model_config.accelerationEnabled = false;
    const NodeFaultSampler sampler(model_config);
    Rng rng(123);

    unsigned faults_checked = 0;
    unsigned nodes_tried = 0;
    while (faults_checked < 25 && nodes_tried < 200) {
        ++nodes_tried;
        const NodeSample node = sampler.sampleNode(rng);
        if (!node.anyPermanent())
            continue;

        ControllerConfig config;
        config.budget = RepairBudget{4, 32768};
        RelaxFaultController controller(config);

        for (const auto &fault : node.faults) {
            if (!fault.permanent())
                continue;
            // Pre-write pattern data into a sample of affected lines.
            std::vector<std::pair<uint64_t, std::array<uint8_t, 64>>>
                shadow;
            for (const auto &part : fault.parts) {
                unsigned sampled = 0;
                part.region.forEachSlice(
                    controller.config().geometry,
                    [&](unsigned bank, uint32_t row, uint16_t col) {
                        if (sampled >= 8 || (row + col) % 7 != 0)
                            return;
                        ++sampled;
                        LineCoord coord;
                        coord.channel = part.dimm /
                            controller.config().geometry.ranksPerChannel;
                        coord.rank = part.dimm %
                            controller.config().geometry.ranksPerChannel;
                        coord.bank = bank;
                        coord.row = row;
                        coord.colBlock = col;
                        const uint64_t pa =
                            controller.addressMap().encode(coord);
                        std::array<uint8_t, 64> data;
                        for (unsigned i = 0; i < 64; ++i)
                            data[i] = static_cast<uint8_t>(
                                (pa >> (i % 8)) ^ i);
                        controller.write(pa, data.data());
                        shadow.emplace_back(pa, data);
                    });
                if (part.region.massive())
                    break;
            }

            const bool repaired = controller.reportFault(fault);
            if (!repaired)
                continue;
            ++faults_checked;
            for (const auto &[pa, expected] : shadow) {
                uint8_t out[64];
                const EccStatus status = controller.read(pa, out);
                ASSERT_NE(status, EccStatus::Uncorrectable);
                ASSERT_EQ(std::memcmp(out, expected.data(), 64), 0)
                    << "data corrupted after repair";
            }
        }
    }
    EXPECT_GE(faults_checked, 25u);
}

TEST(Integration, ControllerAgreesWithMechanismVerdict)
{
    // The controller's reportFault must return exactly what a bare
    // RelaxFaultRepair with the same budget decides.
    FaultModelConfig model_config;
    model_config.fitScale = 40.0;
    model_config.accelerationEnabled = false;
    const NodeFaultSampler sampler(model_config);
    Rng rng(321);

    ControllerConfig config;
    const DramGeometry geometry = config.geometry;
    const CacheGeometry llc = config.llc;

    for (int trial = 0; trial < 30; ++trial) {
        const NodeSample node = sampler.sampleNode(rng);
        if (!node.anyPermanent())
            continue;
        RelaxFaultController controller(config);
        RelaxFaultRepair reference(geometry, llc, config.budget,
                                   config.xorFold);
        for (const auto &fault : node.faults) {
            if (!fault.permanent())
                continue;
            const bool expected = reference.tryRepair(fault);
            EXPECT_EQ(controller.reportFault(fault), expected);
        }
        EXPECT_EQ(controller.repair().usedLines(),
                  reference.usedLines());
    }
}

TEST(Integration, CoverageRankingStableAcrossSeeds)
{
    // RelaxFault >= FreeFault on the same fault population, for several
    // independent populations (a property, not a lucky seed).
    CoverageConfig config;
    config.faultyNodeTarget = 600;
    const CoverageEvaluator evaluator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const RepairBudget budget{1, 32768};
    const DramAddressMap map(geometry, true);

    for (uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng_a(seed);
        Rng rng_b(seed);
        const CoverageResult relax = evaluator.run(
            [&] {
                return std::make_unique<RelaxFaultRepair>(geometry, llc,
                                                          budget, true);
            },
            rng_a);
        const CoverageResult free_fault = evaluator.run(
            [&] {
                return std::make_unique<FreeFaultRepair>(map, llc,
                                                         budget, true);
            },
            rng_b);
        EXPECT_GE(relax.coverage() + 1e-9, free_fault.coverage())
            << "seed " << seed;
    }
}

TEST(Integration, RelaxFaultCapacityRoughly16xBelowFreeFault)
{
    // For single row faults the paper's headline resource claim: the
    // coalescing map needs 1/16th the lines of physical-block locking.
    const DramGeometry geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const DramAddressMap map(geometry, true);
    RelaxFaultRepair relax(geometry, llc, RepairBudget{16, 65536}, true);
    FreeFaultRepair free_fault(map, llc, RepairBudget{16, 65536}, true);

    Rng rng(77);
    const FaultGeometrySampler sampler(geometry, FaultGeometryParams{});
    for (int i = 0; i < 20; ++i) {
        FaultRecord fault;
        fault.persistence = Persistence::Permanent;
        fault.parts.push_back(
            {static_cast<unsigned>(rng.uniformInt(8)),
             static_cast<unsigned>(rng.uniformInt(18)),
             sampler.sample(FaultMode::SingleRow, rng)});
        ASSERT_TRUE(relax.tryRepair(fault));
        ASSERT_TRUE(free_fault.tryRepair(fault));
    }
    EXPECT_NEAR(static_cast<double>(free_fault.usedLines()) /
                    static_cast<double>(relax.usedLines()),
                16.0, 0.5);
}

TEST(Integration, EndToEndSeedReproducibility)
{
    // Same seed => byte-identical experiment outcomes across the stack.
    CoverageConfig config;
    config.faultyNodeTarget = 300;
    const CoverageEvaluator evaluator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};

    auto factory = [&] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{1, 32768}, true);
    };
    Rng rng_a(2016);
    Rng rng_b(2016);
    const CoverageResult a = evaluator.run(factory, rng_a);
    const CoverageResult b = evaluator.run(factory, rng_b);
    EXPECT_EQ(a.repairedNodes, b.repairedNodes);
    EXPECT_EQ(a.faultyNodes, b.faultyNodes);
    EXPECT_EQ(a.nodesSampled, b.nodesSampled);
}

} // namespace
} // namespace relaxfault
