/**
 * @file
 * Regression tests for the parallel Monte Carlo engine's determinism
 * contract: a given master seed must produce bit-identical
 * `LifetimeSummary` results at every thread count and chunk size, and
 * `runTrials(N)` must equal the concatenation of the N per-trial
 * `runSystemTrial` calls with the counter-derived seeds. Every
 * comparison is exact double equality — no tolerances.
 */

#include <gtest/gtest.h>

#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"

namespace relaxfault {
namespace {

LifetimeConfig
testConfig()
{
    // 10x FIT on 512 nodes: every metric is comfortably non-zero, so
    // the exact-equality checks below exercise real arithmetic.
    LifetimeConfig config;
    config.nodesPerSystem = 512;
    config.faultModel.fitScale = 10.0;
    return config;
}

LifetimeSimulator::MechanismFactory
relaxFactory(const LifetimeConfig &config)
{
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    return [geometry, llc] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{4, 32768}, true);
    };
}

void
expectIdentical(const RunningStat &a, const RunningStat &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.ci95(), b.ci95());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectIdentical(const LifetimeSummary &a, const LifetimeSummary &b)
{
    expectIdentical(a.faultyNodes, b.faultyNodes);
    expectIdentical(a.multiDeviceFaultDimms, b.multiDeviceFaultDimms);
    expectIdentical(a.dues, b.dues);
    expectIdentical(a.sdcs, b.sdcs);
    expectIdentical(a.replacements, b.replacements);
    expectIdentical(a.repairedFaults, b.repairedFaults);
    expectIdentical(a.permanentFaults, b.permanentFaults);
    expectIdentical(a.fullyRepairedNodes, b.fullyRepairedNodes);
}

TrialRunOptions
withThreads(unsigned threads, unsigned chunk = 0)
{
    TrialRunOptions options;
    options.parallel.threads = threads;
    options.parallel.chunk = chunk;
    return options;
}

TEST(LifetimeParallel, BitIdenticalAcrossThreadCounts)
{
    const LifetimeSimulator simulator(testConfig());
    constexpr unsigned kTrials = 24;
    constexpr uint64_t kSeed = 1206;

    const LifetimeSummary one =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(1));
    const LifetimeSummary two =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(2));
    const LifetimeSummary eight =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(8));

    EXPECT_GT(one.dues.mean(), 0.0);  // The comparison is non-vacuous.
    expectIdentical(one, two);
    expectIdentical(one, eight);
}

TEST(LifetimeParallel, BitIdenticalWithRepairMechanism)
{
    // The factory path exercises concurrent mechanism construction.
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 16;
    constexpr uint64_t kSeed = 4242;

    const LifetimeSummary one =
        simulator.runTrials(kTrials, factory, kSeed, withThreads(1));
    const LifetimeSummary eight =
        simulator.runTrials(kTrials, factory, kSeed, withThreads(8));

    EXPECT_GT(one.repairedFaults.mean(), 0.0);
    expectIdentical(one, eight);
}

TEST(LifetimeParallel, BitIdenticalAcrossChunkSizes)
{
    const LifetimeSimulator simulator(testConfig());
    constexpr unsigned kTrials = 24;
    constexpr uint64_t kSeed = 77;

    const LifetimeSummary coarse =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(4, 24));
    const LifetimeSummary fine =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(4, 1));
    const LifetimeSummary odd =
        simulator.runTrials(kTrials, {}, kSeed, withThreads(4, 7));

    expectIdentical(coarse, fine);
    expectIdentical(coarse, odd);
}

TEST(LifetimeParallel, EqualsConcatenationOfDerivedTrials)
{
    // runTrials(N) == sequentially folding runSystemTrial under the
    // derived seeds forkAt(seed, 0..N-1), in trial order. This pins the
    // engine to the obvious sequential semantics.
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 12;
    constexpr uint64_t kSeed = 31415;

    LifetimeSummary reference;
    for (unsigned t = 0; t < kTrials; ++t) {
        Rng rng = Rng::forkAt(kSeed, t);
        reference.addTrial(simulator.runSystemTrial(factory, rng));
    }

    const LifetimeSummary parallel =
        simulator.runTrials(kTrials, factory, kSeed, withThreads(8, 3));
    expectIdentical(reference, parallel);
}

TEST(LifetimeParallel, DistinctSeedsStillDiffer)
{
    // Guard against a forkAt bug that collapses seeds: two master
    // seeds must not reproduce each other's trial streams.
    const LifetimeSimulator simulator(testConfig());
    const LifetimeSummary a =
        simulator.runTrials(8, {}, 1, withThreads(2));
    const LifetimeSummary b =
        simulator.runTrials(8, {}, 2, withThreads(2));
    EXPECT_NE(a.permanentFaults.sum(), b.permanentFaults.sum());
}

TEST(LifetimeParallel, SummaryMergeMatchesWholeRun)
{
    // Merging the summaries of two half-runs approximates the full run:
    // counts and sums are exact, moments to 1e-12 relative error. (The
    // halves re-derive from trial index 0, so this uses one half's
    // trials twice — the point is the merge arithmetic, not the seeds.)
    const LifetimeSimulator simulator(testConfig());
    LifetimeSummary whole;
    LifetimeSummary front;
    LifetimeSummary back;
    constexpr unsigned kTrials = 16;
    for (unsigned t = 0; t < kTrials; ++t) {
        Rng rng = Rng::forkAt(5, t);
        const LifetimeMetrics m = simulator.runSystemTrial({}, rng);
        whole.addTrial(m);
        (t < kTrials / 2 ? front : back).addTrial(m);
    }
    front.merge(back);
    EXPECT_EQ(front.dues.count(), whole.dues.count());
    EXPECT_EQ(front.dues.sum(), whole.dues.sum());
    EXPECT_NEAR(front.dues.variance(), whole.dues.variance(),
                1e-12 * whole.dues.variance());
    EXPECT_NEAR(front.sdcs.mean(), whole.sdcs.mean(),
                1e-12 * whole.sdcs.mean());
}

} // namespace
} // namespace relaxfault
