/**
 * @file
 * Property tests for the Fig. 7c RelaxFault mapping: sampled fault
 * regions (fixed seeds, fuzzed LLC/DRAM geometries) must coalesce into
 * at most a handful of locked ways per LLC set — the structural claim
 * that lets RelaxFault repair whole rows and columns inside a 1-4 way
 * budget where a hash placement suffers birthday collisions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/fault_geometry.h"
#include "faults/region.h"
#include "repair/relaxfault_map.h"

namespace relaxfault {
namespace {

struct SetDemand
{
    unsigned maxWays = 0;       ///< Peak distinct tags in any one set.
    uint64_t setsUsed = 0;
    uint64_t units = 0;
};

/**
 * Map every remap unit of @p region (one device's fault) through
 * @p map and measure the per-set way demand.
 */
SetDemand
demandOf(const FaultRegion &region, const DramGeometry &dram,
         const RelaxFaultMap &map)
{
    std::map<uint64_t, std::set<uint64_t>> tags_by_set;
    uint64_t units = 0;
    region.forEachRemapUnit(
        dram, [&](unsigned bank, uint32_t row, uint16_t col_group) {
            RemapUnit unit;
            unit.dimm = 1;
            unit.device = 3;
            unit.bank = bank;
            unit.row = row;
            unit.colGroup = col_group;
            const RemapLocation location = map.locate(unit);
            tags_by_set[location.set].insert(location.tag);
            ++units;
        });
    SetDemand demand;
    demand.units = units;
    demand.setsUsed = tags_by_set.size();
    for (const auto &[set, tags] : tags_by_set)
        demand.maxWays = std::max(
            demand.maxWays, static_cast<unsigned>(tags.size()));
    return demand;
}

struct GeometryCase
{
    std::string name;
    DramGeometry dram;
    CacheGeometry llc;
};

std::vector<GeometryCase>
fuzzedGeometries()
{
    // The paper platform plus fuzzed variants: smaller/larger LLC,
    // fewer ways, and a DDR4-shaped DRAM (8 column groups, 16 banks).
    return {
        {"ddr3-8MiB-16w", DramGeometry::ddr3Dimm(),
         CacheGeometry{8ull * 1024 * 1024, 16, 64}},
        {"ddr3-16MiB-16w", DramGeometry::ddr3Dimm(),
         CacheGeometry{16ull * 1024 * 1024, 16, 64}},
        {"ddr3-8MiB-8w", DramGeometry::ddr3Dimm(),
         CacheGeometry{8ull * 1024 * 1024, 8, 64}},
        {"ddr4-8MiB-16w", DramGeometry::ddr4Dimm(),
         CacheGeometry{8ull * 1024 * 1024, 16, 64}},
    };
}

TEST(MapProperty, RowFaultsSpreadToOneWayPerSet)
{
    for (const GeometryCase &geometry : fuzzedGeometries()) {
        const RelaxFaultMap map(geometry.dram, geometry.llc,
                                RelaxFaultMap::IndexMode::Structured);
        const FaultGeometrySampler sampler(geometry.dram,
                                           FaultGeometryParams{});
        Rng rng(41);
        const unsigned col_groups =
            geometry.dram.colBlocksPerRow / 16;
        for (int i = 0; i < 100; ++i) {
            const FaultRegion region =
                sampler.sample(FaultMode::SingleRow, rng);
            ASSERT_FALSE(region.massive());
            const SetDemand demand =
                demandOf(region, geometry.dram, map);
            // A row fault is one row x all column groups; the column
            // group is part of the set index, so every unit lands in
            // its own set.
            EXPECT_EQ(demand.maxWays, 1u) << geometry.name;
            EXPECT_EQ(demand.setsUsed, demand.units) << geometry.name;
            EXPECT_LE(demand.units, col_groups) << geometry.name;
            EXPECT_EQ(demand.units,
                      region.remapUnitCount(geometry.dram))
                << geometry.name;
        }
    }
}

TEST(MapProperty, ColumnFaultsNeedAtMostFourWaysPerSet)
{
    for (const GeometryCase &geometry : fuzzedGeometries()) {
        const RelaxFaultMap map(geometry.dram, geometry.llc,
                                RelaxFaultMap::IndexMode::Structured);
        const FaultGeometryParams params;
        const FaultGeometrySampler sampler(geometry.dram, params);
        Rng rng(42);
        const bool subarray_fits =
            (1u << map.rowLowBits()) >= params.subarrayRows;
        for (int i = 0; i < 200; ++i) {
            const FaultRegion region =
                sampler.sample(FaultMode::SingleColumn, rng);
            ASSERT_FALSE(region.massive());
            const SetDemand demand =
                demandOf(region, geometry.dram, map);
            EXPECT_LE(demand.maxWays, 4u) << geometry.name;
            // When the set index has enough low row bits to cover a
            // whole subarray, the spread is perfect by construction:
            // the column fault's rows all sit in one subarray.
            if (subarray_fits) {
                EXPECT_EQ(demand.maxWays, 1u) << geometry.name;
            }
        }
    }
}

TEST(MapProperty, SingleBitAndWordFaultsAreOneUnit)
{
    for (const GeometryCase &geometry : fuzzedGeometries()) {
        const RelaxFaultMap map(geometry.dram, geometry.llc,
                                RelaxFaultMap::IndexMode::Structured);
        const FaultGeometrySampler sampler(geometry.dram,
                                           FaultGeometryParams{});
        Rng rng(43);
        for (int i = 0; i < 100; ++i) {
            const FaultRegion region =
                sampler.sample(FaultMode::SingleBit, rng);
            const SetDemand demand =
                demandOf(region, geometry.dram, map);
            // A bit fault — even a multi-bit word fault — stays inside
            // one 64B remap unit, so it costs one way of one set.
            EXPECT_EQ(demand.units, 1u) << geometry.name;
            EXPECT_EQ(demand.maxWays, 1u) << geometry.name;
        }
    }
}

TEST(MapProperty, SmallBankFaultsStayWithinFourWays)
{
    for (const GeometryCase &geometry : fuzzedGeometries()) {
        const RelaxFaultMap map(geometry.dram, geometry.llc,
                                RelaxFaultMap::IndexMode::Structured);
        const FaultGeometrySampler sampler(geometry.dram,
                                           FaultGeometryParams{});
        Rng rng(44);
        unsigned tested = 0;
        for (int i = 0; i < 300 && tested < 60; ++i) {
            const FaultRegion region =
                sampler.sample(FaultMode::SingleBank, rng);
            // Massive (whole-bank) extents exceed any budget and are
            // rejected upstream; medium extents are what the 4-way vs
            // 1-way coverage gap is about. The <=4 guarantee is for
            // the small decoder-glitch extents (a few rows of one
            // subarray).
            if (region.massive() ||
                region.distinctRowCount(geometry.dram) > 48)
                continue;
            ++tested;
            const SetDemand demand =
                demandOf(region, geometry.dram, map);
            EXPECT_LE(demand.maxWays, 4u) << geometry.name;
        }
        EXPECT_GE(tested, 40u) << geometry.name;
    }
}

TEST(MapProperty, StructuredBeatsHashPlacementOnColumnFaults)
{
    // The ablation claim behind Fig. 8: with a pure hash placement the
    // birthday collisions return, so across many sampled column faults
    // the hash mapping demands >1 way in some set strictly more often
    // than the structured mapping.
    const GeometryCase geometry = fuzzedGeometries()[0];
    const RelaxFaultMap structured(
        geometry.dram, geometry.llc,
        RelaxFaultMap::IndexMode::Structured);
    const RelaxFaultMap hashed(geometry.dram, geometry.llc,
                               RelaxFaultMap::IndexMode::HashOnly);
    const FaultGeometrySampler sampler(geometry.dram,
                                       FaultGeometryParams{});
    Rng rng(45);
    unsigned structured_collisions = 0;
    unsigned hashed_collisions = 0;
    for (int i = 0; i < 300; ++i) {
        const FaultRegion region =
            sampler.sample(FaultMode::SingleColumn, rng);
        structured_collisions +=
            demandOf(region, geometry.dram, structured).maxWays > 1;
        hashed_collisions +=
            demandOf(region, geometry.dram, hashed).maxWays > 1;
    }
    EXPECT_EQ(structured_collisions, 0u);
    EXPECT_GT(hashed_collisions, structured_collisions);
}

TEST(MapProperty, LocateIsInjectiveOnSampledUnits)
{
    for (const GeometryCase &geometry : fuzzedGeometries()) {
        for (const auto mode :
             {RelaxFaultMap::IndexMode::Structured,
              RelaxFaultMap::IndexMode::StructuredFolded}) {
            const RelaxFaultMap map(geometry.dram, geometry.llc, mode);
            Rng rng(46);
            for (int i = 0; i < 2000; ++i) {
                RemapUnit unit;
                unit.dimm = static_cast<unsigned>(rng.uniformInt(
                    geometry.dram.dimmsPerNode()));
                unit.device = static_cast<unsigned>(rng.uniformInt(
                    geometry.dram.devicesPerRank()));
                unit.bank = static_cast<unsigned>(rng.uniformInt(
                    geometry.dram.banksPerDevice));
                unit.row = static_cast<uint32_t>(rng.uniformInt(
                    geometry.dram.rowsPerBank));
                unit.colGroup = static_cast<uint16_t>(rng.uniformInt(
                    geometry.dram.colBlocksPerRow / 16));
                const RemapLocation location = map.locate(unit);
                EXPECT_EQ(map.invert(location), unit) << geometry.name;
            }
        }
    }
}

} // namespace
} // namespace relaxfault
