/**
 * @file
 * Tests for the live observability plane (DESIGN.md §15): the
 * shared-memory stats plane, the OpenMetrics exporter, the SIGPROF
 * sampling profiler, the heartbeat staleness monitor, and the
 * bench-diff comparison engine.
 *
 * The load-bearing contracts:
 *
 *  - Observation-only: enabling the stats publisher and the profiler
 *    leaves every simulation result bit-identical, at 1 and 4 threads
 *    (exact double equality — the ISSUE's acceptance bar).
 *  - Seqlock snapshots are never torn, including under a concurrent
 *    writer and across a real fork.
 *  - `HeartbeatMonitor` staleness is wraparound-safe, catches zero-tick
 *    workers, and measures only the parent's own clock.
 *  - `sim.peak_rss_bytes` folds max-within-process / max-across-shards
 *    / sum-across-slots (never additive).
 *  - A synthetic 2x perf regression fails `compareBenchRecords`; the
 *    `minNs` noise floor and informational columns never gate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <csignal>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/clock.h"
#include "common/fs.h"
#include "common/log.h"
#include "common/heartbeat.h"
#include "common/process.h"
#include "campaign_flags.h"
#include "fleet/worker_pool.h"
#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"
#include "telemetry/bench_compare.h"
#include "telemetry/json_reader.h"
#include "telemetry/metrics.h"
#include "telemetry/openmetrics.h"
#include "telemetry/profiler.h"
#include "telemetry/stats_plane.h"

namespace relaxfault {
namespace {

LifetimeConfig
testConfig()
{
    // Small but active: 10x FIT on 128 nodes keeps every metric nonzero
    // while a run stays well under a second.
    LifetimeConfig config;
    config.nodesPerSystem = 128;
    config.faultModel.fitScale = 10.0;
    return config;
}

LifetimeSimulator::MechanismFactory
relaxFactory(const LifetimeConfig &config)
{
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    return [geometry, llc] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{4, 32768}, true);
    };
}

void
expectIdentical(const RunningStat &a, const RunningStat &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void
expectIdentical(const LifetimeSummary &a, const LifetimeSummary &b)
{
    expectIdentical(a.faultyNodes, b.faultyNodes);
    expectIdentical(a.multiDeviceFaultDimms, b.multiDeviceFaultDimms);
    expectIdentical(a.dues, b.dues);
    expectIdentical(a.sdcs, b.sdcs);
    expectIdentical(a.replacements, b.replacements);
    expectIdentical(a.repairedFaults, b.repairedFaults);
    expectIdentical(a.permanentFaults, b.permanentFaults);
    expectIdentical(a.fullyRepairedNodes, b.fullyRepairedNodes);
    expectIdentical(a.budgetExhausted, b.budgetExhausted);
    expectIdentical(a.degradedToRetirement, b.degradedToRetirement);
    expectIdentical(a.degradedDues, b.degradedDues);
    expectIdentical(a.failStops, b.failStops);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "relaxfault_obs_" + name + "_" +
           std::to_string(::getpid());
}

// ---------------------------------------------------------------------
// StatsPlane: create / publish / observe.

TEST(StatsPlane, PublishAndReadBack)
{
    const std::string path = tempPath("plane_rw");
    StatsPlane plane = StatsPlane::create(path, 2, "test_campaign");
    EXPECT_EQ(plane.slots(), 2u);
    EXPECT_EQ(plane.campaign(), "test_campaign");
    EXPECT_EQ(plane.ownerPid(), static_cast<uint64_t>(::getpid()));
    EXPECT_GT(plane.startEpochMs(), 0u);
    EXPECT_EQ(plane.quarantinedShards(), 0u);

    StatsPublisher pub = plane.publisher(0);
    ASSERT_TRUE(pub.enabled());
    pub.announce(StatsPhase::Running);
    pub.beginShard(3);
    for (int i = 0; i < 5; ++i) {
        pub.trialStarted();
        pub.trialFinished();
    }
    StatsSlotSample sample;
    ASSERT_TRUE(plane.readSlot(0, sample));
    EXPECT_EQ(sample.pid, static_cast<uint64_t>(::getpid()));
    EXPECT_EQ(sample.phase, StatsPhase::Running);
    EXPECT_EQ(sample.shard, 3u);
    EXPECT_EQ(sample.trialsStarted, 5u);
    EXPECT_EQ(sample.trialsCompleted, 5u);
    EXPECT_GT(sample.heartbeatTick, 0u);

    pub.endShard();
    pub.setPhase(StatsPhase::Done);
    ASSERT_TRUE(plane.readSlot(0, sample));
    EXPECT_EQ(sample.phase, StatsPhase::Done);
    // Counters survive the phase transitions (monotone, never reset).
    EXPECT_EQ(sample.trialsCompleted, 5u);

    plane.noteQuarantine();
    EXPECT_EQ(plane.quarantinedShards(), 1u);
    plane.markPhase(1, StatsPhase::Crashed);
    ASSERT_TRUE(plane.readSlot(1, sample));
    EXPECT_EQ(sample.phase, StatsPhase::Crashed);
    std::remove(path.c_str());
}

TEST(StatsPlane, AttachValidatesForeignBytes)
{
    std::string error;
    EXPECT_EQ(StatsPlane::attach(tempPath("plane_missing"), &error),
              nullptr);
    EXPECT_FALSE(error.empty());

    const std::string junk = tempPath("plane_junk");
    ASSERT_TRUE(atomicWriteFile(
        junk, std::string(8192, 'x')));
    error.clear();
    EXPECT_EQ(StatsPlane::attach(junk, &error), nullptr);
    EXPECT_FALSE(error.empty());
    std::remove(junk.c_str());
}

TEST(StatsPlane, ObserverAttachSeesWriterUpdates)
{
    const std::string path = tempPath("plane_attach");
    StatsPlane plane = StatsPlane::create(path, 1, "attach_test");
    StatsPublisher pub = plane.publisher(0);
    pub.announce(StatsPhase::Running);
    pub.trialStarted();
    pub.trialFinished();

    std::string error;
    const std::unique_ptr<StatsPlane> observer =
        StatsPlane::attach(path, &error);
    ASSERT_NE(observer, nullptr) << error;
    EXPECT_EQ(observer->campaign(), "attach_test");
    StatsSlotSample sample;
    ASSERT_TRUE(observer->readSlot(0, sample));
    EXPECT_EQ(sample.trialsCompleted, 1u);
    // Writes land through the shared file pages without re-attach.
    pub.trialStarted();
    pub.trialFinished();
    ASSERT_TRUE(observer->readSlot(0, sample));
    EXPECT_EQ(sample.trialsCompleted, 2u);
    std::remove(path.c_str());
}

TEST(StatsPlane, SeqlockNeverTearsUnderConcurrentWriter)
{
    const std::string path = tempPath("plane_torn");
    StatsPlane plane = StatsPlane::create(path, 1, "seqlock_test");
    StatsPublisher pub = plane.publisher(0);
    pub.announce(StatsPhase::Running);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t shard = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            pub.beginShard(shard++);
            for (int i = 0; i < 16; ++i) {
                pub.trialStarted();
                pub.trialFinished();
            }
            pub.endShard();
        }
    });
    StatsSlotSample sample;
    uint64_t last_completed = 0;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(plane.readSlot(0, sample));
        // Phase is always a value the writer actually stores — a torn
        // read would surface garbage here.
        EXPECT_LE(static_cast<unsigned>(sample.phase),
                  static_cast<unsigned>(StatsPhase::Crashed));
        EXPECT_GE(sample.trialsCompleted, last_completed);
        EXPECT_GE(sample.trialsStarted, sample.trialsCompleted);
        last_completed = sample.trialsCompleted;
    }
    stop.store(true);
    writer.join();
    std::remove(path.c_str());
}

TEST(StatsPlane, ForkedChildPublishesThroughSharedPages)
{
    const std::string path = tempPath("plane_fork");
    StatsPlane plane = StatsPlane::create(path, 2, "fork_test");
    const pid_t pid = spawnProcess([&plane] {
        StatsPublisher pub = plane.publisher(1);
        pub.announce(StatsPhase::Running);
        pub.beginShard(7);
        for (int i = 0; i < 9; ++i) {
            pub.trialStarted();
            pub.trialFinished();
        }
        pub.setPhase(StatsPhase::Done);
        return 0;
    });
    const ProcessStatus status = waitProcess(pid);
    EXPECT_TRUE(status.ok());
    StatsSlotSample sample;
    ASSERT_TRUE(plane.readSlot(1, sample));
    EXPECT_EQ(sample.pid, static_cast<uint64_t>(pid));
    EXPECT_EQ(sample.phase, StatsPhase::Done);
    EXPECT_EQ(sample.shard, 7u);
    EXPECT_EQ(sample.trialsCompleted, 9u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Observation-only: stats + profiler leave results bit-identical.

TEST(ObservationOnly, StatsAndProfilerPreserveBitIdentity)
{
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    const auto factory = relaxFactory(config);
    constexpr unsigned kTrials = 8;
    constexpr uint64_t kSeed = 42;

    TrialRunOptions plain;
    plain.parallel.threads = 1;
    const LifetimeSummary baseline =
        simulator.runTrials(kTrials, factory, kSeed, plain);

    const std::string path = tempPath("plane_identity");
    StatsPlane plane = StatsPlane::create(path, 1, "identity");
    StatsPublisher pub = plane.publisher(0);
    pub.announce(StatsPhase::Running);
    profiler::reset();
    profiler::start();
    for (const unsigned threads : {1u, 4u}) {
        MetricRegistry registry;
        TrialRunOptions instrumented;
        instrumented.parallel.threads = threads;
        instrumented.metrics = &registry;
        instrumented.stats = &pub;
        const LifetimeSummary observed =
            simulator.runTrials(kTrials, factory, kSeed, instrumented);
        expectIdentical(baseline, observed);
    }
    profiler::stop();
    StatsSlotSample sample;
    ASSERT_TRUE(plane.readSlot(0, sample));
    // Both instrumented runs published: 2 engines x kTrials.
    EXPECT_EQ(sample.trialsCompleted, 2 * kTrials);
    EXPECT_EQ(sample.trialsStarted, 2 * kTrials);
    profiler::reset();
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// OpenMetrics rendering.

/** OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. */
bool
validMetricName(const std::string &name)
{
    if (name.empty() ||
        (std::isalpha(static_cast<unsigned char>(name[0])) == 0 &&
         name[0] != '_' && name[0] != ':'))
        return false;
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 &&
            c != '_' && c != ':')
            return false;
    }
    return true;
}

TEST(OpenMetrics, RenderedTextIsLintClean)
{
    MetricRegistry registry;
    registry.counter("sim.dues").add(5);
    registry.counter("repair.fail-stops").add(0);
    registry.gauge("sim.peak_rss_bytes").set(1 << 20);
    Log2Histogram &hist = registry.histogram("sim.trial_us");
    hist.record(10);
    hist.record(1000);
    hist.record(100000);

    const std::string text = registry.renderOpenMetrics();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    EXPECT_NE(text.find("# TYPE relaxfault_sim_dues counter"),
              std::string::npos);
    EXPECT_NE(text.find("relaxfault_sim_dues_total 5"),
              std::string::npos);
    // '-' is not in the OpenMetrics charset; sanitizer maps it to '_'.
    EXPECT_NE(text.find("relaxfault_repair_fail_stops_total"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE relaxfault_sim_peak_rss_bytes gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE relaxfault_sim_trial_us summary"),
              std::string::npos);
    EXPECT_NE(text.find("relaxfault_sim_trial_us_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);

    // Every exposition line is a comment, blank, or `name[{labels}] value`
    // with a charset-clean name.
    for (const std::string &line : splitLines(text)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t name_end = line.find_first_of("{ ");
        ASSERT_NE(name_end, std::string::npos) << line;
        EXPECT_TRUE(validMetricName(line.substr(0, name_end))) << line;
    }
}

TEST(OpenMetrics, ExporterWritesAtomicSnapshots)
{
    MetricRegistry registry;
    registry.counter("sim.trials").add(3);
    const std::string path = tempPath("metrics.om");
    OpenMetricsExporter exporter(registry, path, /*periodMs=*/0);
    EXPECT_EQ(exporter.snapshotsWritten(), 0u);
    exporter.writeNow();
    EXPECT_EQ(exporter.snapshotsWritten(), 1u);
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    EXPECT_NE(text.find("relaxfault_sim_trials_total 3"),
              std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    registry.counter("sim.trials").add(1);
    exporter.stop();  // Final snapshot on stop.
    ASSERT_TRUE(readFile(path, text));
    EXPECT_NE(text.find("relaxfault_sim_trials_total 4"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(OpenMetrics, PeriodicExporterPublishesWhileRunning)
{
    MetricRegistry registry;
    registry.counter("sim.trials").add(1);
    const std::string path = tempPath("metrics_periodic.om");
    {
        OpenMetricsExporter exporter(registry, path, /*periodMs=*/5);
        // The background thread writes on its cadence without writeNow.
        for (int i = 0; i < 200 && exporter.snapshotsWritten() == 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        EXPECT_GT(exporter.snapshotsWritten(), 0u);
        exporter.stop();
    }
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Profiler: folded output and determinism of the marker tree.

TEST(Profiler, FoldedStacksNameMarkedPhases)
{
    profiler::reset();
    profiler::start(/*hz=*/997);
    // Burn CPU inside a nested phase stack until samples land. CPU
    // time (ITIMER_PROF) drives the timer, so the loop must compute.
    volatile uint64_t sink = 0;
    {
        const ProfilePhase trial(ProfilePhaseId::Trial);
        const ProfilePhase sim(ProfilePhaseId::NodeSim);
        for (int spin = 0;
             spin < 2000 && profiler::totalSamples() < 5; ++spin) {
            for (uint64_t i = 0; i < 200000; ++i)
                sink = sink + i * i;
        }
    }
    profiler::stop();
    ASSERT_GT(profiler::totalSamples(), 0u)
        << "no SIGPROF delivered while burning CPU";
    const std::string folded = profiler::folded();
    EXPECT_NE(folded.find("relaxfault;trial;node_sim "),
              std::string::npos)
        << folded;
    for (const std::string &line : splitLines(folded)) {
        if (line.empty())
            continue;
        EXPECT_EQ(line.rfind("relaxfault", 0), 0u) << line;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
    const std::string table = profiler::selfTimeTable();
    EXPECT_NE(table.find("node_sim"), std::string::npos);
    profiler::reset();
    EXPECT_EQ(profiler::totalSamples(), 0u);
}

TEST(Profiler, DisabledMarkersAreInert)
{
    profiler::reset();
    ASSERT_FALSE(profiler::enabled());
    {
        const ProfilePhase trial(ProfilePhaseId::Trial);
        const ProfilePhase repair(ProfilePhaseId::Repair);
    }
    EXPECT_EQ(profiler::totalSamples(), 0u);
}

// ---------------------------------------------------------------------
// ProgressMeter on an injected clock.

TEST(ProgressMeter, RatePerSecUsesInjectedClock)
{
    FakeClock clock;
    ProgressMeter meter("test", 100, /*enabled=*/false, &clock);
    EXPECT_EQ(meter.ratePerSec(), 0.0);  // t=0: no division by zero.
    meter.tick(10);
    clock.advance(std::chrono::milliseconds(2000));
    EXPECT_DOUBLE_EQ(meter.ratePerSec(), 5.0);
    meter.tick(20);
    clock.advance(std::chrono::milliseconds(2000));
    EXPECT_DOUBLE_EQ(meter.ratePerSec(), 7.5);
}

// ---------------------------------------------------------------------
// HeartbeatMonitor: staleness on the parent's clock.

TEST(HeartbeatMonitor, ZeroTickWorkerGoesStale)
{
    FakeClock clock;
    HeartbeatMonitor monitor(clock, 2, /*deadlineMs=*/100);
    monitor.arm(0);
    EXPECT_FALSE(monitor.stale(0, 0));
    clock.advance(std::chrono::milliseconds(99));
    EXPECT_FALSE(monitor.stale(0, 0));
    clock.advance(std::chrono::milliseconds(1));
    // Never beat once; the window still expires from arm().
    EXPECT_TRUE(monitor.stale(0, 0));
}

TEST(HeartbeatMonitor, ProgressRestartsTheWindow)
{
    FakeClock clock;
    HeartbeatMonitor monitor(clock, 1, 100);
    monitor.arm(0);
    clock.advance(std::chrono::milliseconds(99));
    EXPECT_FALSE(monitor.stale(0, 1));  // Beat moved: window restarts.
    clock.advance(std::chrono::milliseconds(99));
    EXPECT_FALSE(monitor.stale(0, 1));  // 99ms into the NEW window.
    clock.advance(std::chrono::milliseconds(1));
    EXPECT_TRUE(monitor.stale(0, 1));
}

TEST(HeartbeatMonitor, CounterWraparoundCountsAsProgress)
{
    FakeClock clock;
    HeartbeatMonitor monitor(clock, 1, 100);
    monitor.arm(0);
    // Progress detection is equality-based, so a counter sailing past
    // UINT64_MAX and wrapping to small values still registers.
    EXPECT_FALSE(monitor.stale(0, UINT64_MAX - 1));
    clock.advance(std::chrono::milliseconds(90));
    EXPECT_FALSE(monitor.stale(0, UINT64_MAX));
    clock.advance(std::chrono::milliseconds(90));
    EXPECT_FALSE(monitor.stale(0, 0));  // Wrapped.
    clock.advance(std::chrono::milliseconds(90));
    EXPECT_FALSE(monitor.stale(0, 1));
    clock.advance(std::chrono::milliseconds(100));
    EXPECT_TRUE(monitor.stale(0, 1));  // Now genuinely stuck.
}

TEST(HeartbeatMonitor, ZeroDeadlineDisablesTheWatchdog)
{
    FakeClock clock;
    HeartbeatMonitor monitor(clock, 1, 0);
    monitor.arm(0);
    clock.advance(std::chrono::hours(24));
    EXPECT_FALSE(monitor.stale(0, 0));
}

TEST(HeartbeatMonitor, ArmRestartsAfterVerdict)
{
    FakeClock clock;
    HeartbeatMonitor monitor(clock, 1, 100);
    monitor.arm(0);
    EXPECT_FALSE(monitor.stale(0, 5));  // First observation of beat 5.
    clock.advance(std::chrono::milliseconds(100));
    EXPECT_TRUE(monitor.stale(0, 5));   // Stuck at 5 → verdict.
    monitor.arm(0);  // Kill issued; do not re-fire every poll.
    // arm() also forgets the beat, so the respawned worker's first
    // report — even the same counter value — reads as fresh progress.
    EXPECT_FALSE(monitor.stale(0, 5));
    clock.advance(std::chrono::milliseconds(100));
    EXPECT_TRUE(monitor.stale(0, 5));
}

// ---------------------------------------------------------------------
// Worker pool integration: the pool-owned plane reconciles with the
// campaign it observed.

TEST(WorkerPoolStats, PlanePersistsAndReconcilesWithTheRun)
{
    const LifetimeConfig config = testConfig();
    const LifetimeSimulator simulator(config);
    constexpr unsigned kTrials = 6;

    CampaignFingerprint fingerprint;
    fingerprint.campaign = "obs_pool_test";
    fingerprint.seed = 7;
    fingerprint.trials = kTrials;
    fingerprint.shards = 2;
    fingerprint.config = "nodes=128";

    WorkerOptions options;
    options.workers = 2;
    options.shards = 2;
    options.statsPath = tempPath("pool_plane");

    MetricRegistry registry;
    TrialRunOptions run;
    run.parallel.threads = 1;
    run.metrics = &registry;
    LifetimeSummary pooled;
    {
        WorkerCampaignRunner pool(fingerprint, options);
        const CampaignResult result =
            pool.runUnit("unit", simulator, relaxFactory(config),
                         kTrials, fingerprint.seed, run);
        ASSERT_FALSE(result.interrupted);
        pooled = result.summary;
        EXPECT_EQ(pool.shardsQuarantined(), 0u);
        // RSS folds: max-across-shards <= sum-over-slots, both real.
        EXPECT_GT(pool.workerPeakRssBytes(), 0);
        EXPECT_GE(pool.workerSumRssBytes(), pool.workerPeakRssBytes());
    }

    // The plane outlives the pool as a file; reconcile it against the
    // run: every trial the campaign reports ran is accounted for by
    // exactly one worker slot.
    std::string error;
    const std::unique_ptr<StatsPlane> plane =
        StatsPlane::attach(options.statsPath, &error);
    ASSERT_NE(plane, nullptr) << error;
    EXPECT_EQ(plane->campaign(), "obs_pool_test");
    EXPECT_EQ(plane->slots(), 2u);
    EXPECT_EQ(plane->quarantinedShards(), 0u);
    uint64_t started = 0, completed = 0;
    for (size_t slot = 0; slot < plane->slots(); ++slot) {
        StatsSlotSample sample;
        ASSERT_TRUE(plane->readSlot(slot, sample));
        started += sample.trialsStarted;
        completed += sample.trialsCompleted;
    }
    EXPECT_EQ(started, kTrials);
    EXPECT_EQ(completed, kTrials);

    // And the pooled run itself is still bit-identical to in-process.
    TrialRunOptions plain;
    plain.parallel.threads = 1;
    expectIdentical(simulator.runTrials(kTrials, relaxFactory(config),
                                        fingerprint.seed, plain),
                    pooled);
    std::remove(options.statsPath.c_str());
}

// ---------------------------------------------------------------------
// Peak-RSS gauge fold semantics (doc contract on kPeakRssGauge).

TEST(PeakRss, GaugeFoldsMaxNotSum)
{
    // takeGauge strips the per-process peak from a snapshot so the
    // additive absorb cannot sum it; the caller folds it with max.
    MetricRegistry worker_a;
    worker_a.gauge(kPeakRssGauge).set(300);
    worker_a.counter("sim.trials").add(2);
    MetricRegistry worker_b;
    worker_b.gauge(kPeakRssGauge).set(500);
    worker_b.counter("sim.trials").add(3);

    MetricsSnapshot snap_a = worker_a.snapshot();
    MetricsSnapshot snap_b = worker_b.snapshot();
    int64_t peak = 0;
    peak = std::max(peak, snap_a.takeGauge(kPeakRssGauge));
    peak = std::max(peak, snap_b.takeGauge(kPeakRssGauge));
    EXPECT_EQ(peak, 500);

    MetricRegistry merged;
    merged.absorb(snap_a);
    merged.absorb(snap_b);
    // Counters added; the stripped gauge never summed to 800.
    EXPECT_EQ(merged.counter("sim.trials").value(), 5u);
    EXPECT_EQ(merged.gauge(kPeakRssGauge).value(), 0);
    merged.gauge(kPeakRssGauge).set(peak);
    EXPECT_EQ(merged.gauge(kPeakRssGauge).value(), 500);
}

// ---------------------------------------------------------------------
// bench_compare: the regression gate's threshold rules.

JsonValue
parseRecord(const std::string &text)
{
    JsonParseResult parsed = parseJson(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return std::move(parsed.value);
}

constexpr const char *kBaseline = R"({
  "bench": "micro", "results": [
    {"name": "hot", "ns_per_op": 10.0, "ops_per_s": 1000.0},
    {"name": "tiny", "ns_per_op": 0.4},
    {"name": "sci", "dues": 8.0}
  ]})";

TEST(BenchCompare, TwoXRegressionFailsTheGate)
{
    const JsonValue baseline = parseRecord(kBaseline);
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 20.0, "ops_per_s": 1000.0},
        {"name": "tiny", "ns_per_op": 0.4},
        {"name": "sci", "dues": 8.0}
      ]})");
    const BenchCompareResult result =
        compareBenchRecords(baseline, candidate, {});
    EXPECT_TRUE(result.regressed);
    ASSERT_EQ(result.regressions().size(), 1u);
    EXPECT_EQ(result.regressions()[0].unit, "hot");
    EXPECT_EQ(result.regressions()[0].key, "ns_per_op");
    EXPECT_DOUBLE_EQ(result.regressions()[0].worseRatio, 2.0);
}

TEST(BenchCompare, WithinThresholdPasses)
{
    const JsonValue baseline = parseRecord(kBaseline);
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 19.9, "ops_per_s": 1000.0},
        {"name": "tiny", "ns_per_op": 0.4},
        {"name": "sci", "dues": 8.0}
      ]})");
    EXPECT_FALSE(
        compareBenchRecords(baseline, candidate, {}).regressed);
}

TEST(BenchCompare, ThroughputDirectionIsInverted)
{
    const JsonValue baseline = parseRecord(kBaseline);
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 10.0, "ops_per_s": 400.0},
        {"name": "tiny", "ns_per_op": 0.4},
        {"name": "sci", "dues": 8.0}
      ]})");
    const BenchCompareResult result =
        compareBenchRecords(baseline, candidate, {});
    EXPECT_TRUE(result.regressed);
    ASSERT_EQ(result.regressions().size(), 1u);
    EXPECT_EQ(result.regressions()[0].key, "ops_per_s");
    EXPECT_DOUBLE_EQ(result.regressions()[0].worseRatio, 2.5);
}

TEST(BenchCompare, MinNsFloorSilencesSubNoisePaths)
{
    const JsonValue baseline = parseRecord(kBaseline);
    // 0.4ns -> 0.9ns is 2.25x — but both sit under a 1ns floor.
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 10.0, "ops_per_s": 1000.0},
        {"name": "tiny", "ns_per_op": 0.9},
        {"name": "sci", "dues": 8.0}
      ]})");
    EXPECT_TRUE(compareBenchRecords(baseline, candidate, {}).regressed);
    BenchCompareOptions floored;
    floored.minNs = 1.0;
    EXPECT_FALSE(
        compareBenchRecords(baseline, candidate, floored).regressed);
}

TEST(BenchCompare, ScientificColumnsNeverGate)
{
    const JsonValue baseline = parseRecord(kBaseline);
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 10.0, "ops_per_s": 1000.0},
        {"name": "tiny", "ns_per_op": 0.4},
        {"name": "sci", "dues": 800.0}
      ]})");
    const BenchCompareResult result =
        compareBenchRecords(baseline, candidate, {});
    EXPECT_FALSE(result.regressed);
    bool saw_dues = false;
    for (const BenchDelta &delta : result.deltas) {
        if (delta.key != "dues")
            continue;
        saw_dues = true;
        EXPECT_EQ(delta.direction, MetricDirection::Informational);
        EXPECT_FALSE(delta.regression);
    }
    EXPECT_TRUE(saw_dues);
}

TEST(BenchCompare, OneSidedRowsBecomeNotesNotFailures)
{
    const JsonValue baseline = parseRecord(kBaseline);
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 10.0, "ops_per_s": 1000.0},
        {"name": "tiny", "ns_per_op": 0.4},
        {"name": "brand_new", "ns_per_op": 99.0}
      ]})");
    const BenchCompareResult result =
        compareBenchRecords(baseline, candidate, {});
    EXPECT_FALSE(result.regressed);
    EXPECT_FALSE(result.notes.empty());
}

TEST(BenchCompare, MarkdownReportCarriesTheVerdict)
{
    const JsonValue baseline = parseRecord(kBaseline);
    const JsonValue candidate = parseRecord(R"({
      "bench": "micro", "results": [
        {"name": "hot", "ns_per_op": 25.0, "ops_per_s": 1000.0},
        {"name": "tiny", "ns_per_op": 0.4},
        {"name": "sci", "dues": 8.0}
      ]})");
    const std::vector<BenchCompareResult> results = {
        compareBenchRecords(baseline, candidate, {})};
    const std::string report = renderBenchDiffMarkdown(results, {});
    EXPECT_NE(report.find("FAIL"), std::string::npos);
    EXPECT_NE(report.find("ns_per_op"), std::string::npos);
    const std::string clean = renderBenchDiffMarkdown(
        {compareBenchRecords(baseline, baseline, {})}, {});
    EXPECT_NE(clean.find("PASS"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flag drift: benches without the plane must hard-reject the flags.

TEST(ObsFlagDeathTest, UninstrumentedBenchRejectsObsFlags)
{
    // The campaign flag list must never drift to include the obs flags:
    // a bench taking only withCampaignFlags rejects them via the strict
    // parser.
    const std::vector<std::string> known =
        bench::withCampaignFlags({"trials"});
    for (const std::string &flag : known) {
        EXPECT_NE(flag, "metrics-out");
        EXPECT_NE(flag, "profile");
        EXPECT_NE(flag, "stats-plane");
    }
    const char *argv[] = {"prog", "--metrics-out=x"};
    EXPECT_EXIT(CliOptions(2, const_cast<char **>(argv), known),
                ::testing::ExitedWithCode(1),
                "unknown option --metrics-out");
}

TEST(ObsFlagDeathTest, RejectObsFlagsIsFatalNotIgnored)
{
    const char *argv[] = {"prog", "--stats-plane=x"};
    const CliOptions options(2, const_cast<char **>(argv),
                             {"metrics-out", "profile", "stats-plane"});
    EXPECT_EXIT(bench::rejectObsFlags(options, "fig15_performance"),
                ::testing::ExitedWithCode(1), "not supported here");
}

} // namespace
} // namespace relaxfault
