/**
 * @file
 * Tests for the performance substrate: workload generators, the DRAM
 * channel timing model, and the multicore simulator's qualitative
 * behaviours (locking ways never helps, LULESH is the most sensitive,
 * weighted speedup is sane).
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dram/power.h"
#include "perf/dram_channel.h"
#include "perf/perf_sim.h"
#include "perf/workload.h"

namespace relaxfault {
namespace {

TEST(Workload, AllPresetsExist)
{
    for (const auto &name : WorkloadParams::multiThreadedNames())
        EXPECT_EQ(WorkloadParams::preset(name).name, name);
    for (const auto &name : WorkloadParams::specMemMix())
        EXPECT_FALSE(WorkloadParams::preset(name).name.empty());
    for (const auto &name : WorkloadParams::specCompMix())
        EXPECT_FALSE(WorkloadParams::preset(name).name.empty());
}

TEST(Workload, AccessesStayInRegion)
{
    const WorkloadParams params = WorkloadParams::preset("LULESH");
    const uint64_t base = 4ull << 30;
    SyntheticWorkload workload(params, base, 1);
    const uint64_t span = params.footprintBytes;
    for (int i = 0; i < 50000; ++i) {
        const auto access = workload.next();
        ASSERT_GE(access.pa, base);
        ASSERT_LT(access.pa, base + span + params.hotSetBytes +
                                 params.hotTailBytes);
        ASSERT_EQ(access.pa % 64, 0u);
    }
}

TEST(Workload, GapMatchesMemOpFraction)
{
    const WorkloadParams params = WorkloadParams::preset("CG");
    SyntheticWorkload workload(params, 0, 2);
    RunningStat gaps;
    for (int i = 0; i < 50000; ++i)
        gaps.add(workload.next().gapInstructions);
    // The generator floors the exponential draw, which shifts the mean
    // down by ~0.5 instructions.
    const double expected = (1.0 - params.memOpFraction) /
                            params.memOpFraction;
    EXPECT_NEAR(gaps.mean(), expected - 0.5, 0.25);
}

TEST(Workload, WriteFractionRespected)
{
    const WorkloadParams params = WorkloadParams::preset("lbm");
    SyntheticWorkload workload(params, 0, 3);
    unsigned writes = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        writes += workload.next().write;
    EXPECT_NEAR(static_cast<double>(writes) / trials,
                params.writeFraction, 0.02);
}

TEST(Workload, BurstsProduceSequentialRuns)
{
    WorkloadParams params = WorkloadParams::preset("libquantum");
    SyntheticWorkload workload(params, 0, 4);
    unsigned sequential = 0;
    uint64_t last = ~0ull;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const auto access = workload.next();
        if (access.pa == last + 64)
            ++sequential;
        last = access.pa;
    }
    // Mean burst 16 lines -> ~94% of accesses continue a run.
    EXPECT_GT(static_cast<double>(sequential) / trials, 0.6);
}

TEST(DramChannel, RowHitFasterThanConflict)
{
    const DramGeometry geometry = PerfConfig::dramGeometry();
    const DramTiming timing;
    DramChannelTiming channel(geometry, timing, 5);
    const uint64_t first = channel.access(0, 0, 100, false, 1000);
    const uint64_t hit = channel.access(0, 0, 100, false, first);
    const uint64_t conflict = channel.access(0, 0, 999, false, hit);
    EXPECT_EQ(hit - first, uint64_t{timing.rowHitLatency()} * 5);
    EXPECT_GT(conflict - hit, hit - first);
    EXPECT_EQ(channel.counts().activates, 2u);
    EXPECT_EQ(channel.counts().reads, 3u);
}

TEST(DramChannel, FrFcfsBatchingKeepsSecondRowWarm)
{
    const DramGeometry geometry = PerfConfig::dramGeometry();
    const DramTiming timing;
    DramChannelTiming channel(geometry, timing, 5);
    uint64_t t = channel.access(0, 0, 100, false, 0);
    t = channel.access(0, 0, 200, false, t);  // Conflict opens row 200.
    const uint64_t before = t;
    t = channel.access(0, 0, 100, false, t);  // Batching credit: hit.
    EXPECT_EQ(t - before, uint64_t{timing.rowHitLatency()} * 5);
}

TEST(DramChannel, BanksIndependent)
{
    const DramGeometry geometry = PerfConfig::dramGeometry();
    DramChannelTiming channel(geometry, DramTiming{}, 5);
    const uint64_t a = channel.access(0, 0, 100, false, 0);
    // A different bank is not blocked by bank 0's busy time (only the
    // shared bus serializes the bursts).
    const uint64_t b = channel.access(0, 1, 100, false, 0);
    EXPECT_LE(b, a + DramTiming{}.tBURST * 5);
}

TEST(DramChannel, WritesCounted)
{
    const DramGeometry geometry = PerfConfig::dramGeometry();
    DramChannelTiming channel(geometry, DramTiming{}, 5);
    channel.access(0, 0, 1, true, 0);
    channel.finalize(1000);
    EXPECT_EQ(channel.counts().writes, 1u);
    EXPECT_EQ(channel.counts().cycles, 200u);  // 1000 / ratio 5.
}

TEST(RepairConfigLabels, Stable)
{
    EXPECT_EQ(LlcRepairConfig::none().label(), "no-repair");
    EXPECT_EQ(LlcRepairConfig::ways(4).label(), "4-way");
    EXPECT_EQ(LlcRepairConfig::randomBytes(100 * 1024, 1).label(),
              "100KiB");
}

class PerfSimTest : public ::testing::Test
{
  protected:
    PerfSimTest()
    {
        config_.instructionsPerCore = 60000;
        config_.warmupAccessesPerCore = 5000;
    }

    PerfConfig config_;
};

TEST_F(PerfSimTest, RunsAndProducesPositiveIpc)
{
    const PerfSimulator simulator(config_);
    const std::vector<WorkloadParams> workloads(
        4, WorkloadParams::preset("CG"));
    const PerfResult result =
        simulator.run(workloads, LlcRepairConfig::none(), 11);
    ASSERT_EQ(result.cores.size(), 4u);
    for (const auto &core : result.cores) {
        EXPECT_GE(core.instructions, config_.instructionsPerCore);
        EXPECT_GT(core.ipc(), 0.0);
        EXPECT_LT(core.ipc(), 4.0);  // Bounded by issue width.
    }
    EXPECT_GT(result.dram.reads, 0u);
    EXPECT_GT(result.llcMissRate(), 0.0);
    EXPECT_LT(result.llcMissRate(), 1.0);
}

TEST_F(PerfSimTest, DeterministicForSameSeed)
{
    const PerfSimulator simulator(config_);
    const std::vector<WorkloadParams> workloads(
        2, WorkloadParams::preset("SP"));
    const PerfResult a =
        simulator.run(workloads, LlcRepairConfig::none(), 3);
    const PerfResult b =
        simulator.run(workloads, LlcRepairConfig::none(), 3);
    EXPECT_EQ(a.cores[0].cycles, b.cores[0].cycles);
    EXPECT_EQ(a.dram.reads, b.dram.reads);
}

TEST_F(PerfSimTest, LockingWaysNeverHelpsMuch)
{
    const PerfSimulator simulator(config_);
    const std::vector<WorkloadParams> workloads(
        8, WorkloadParams::preset("LULESH"));
    const PerfResult full =
        simulator.run(workloads, LlcRepairConfig::none(), 5);
    const PerfResult locked =
        simulator.run(workloads, LlcRepairConfig::ways(8), 5);
    double full_ipc = 0.0;
    double locked_ipc = 0.0;
    for (unsigned i = 0; i < 8; ++i) {
        full_ipc += full.cores[i].ipc();
        locked_ipc += locked.cores[i].ipc();
    }
    EXPECT_LT(locked_ipc, full_ipc * 1.02);
    EXPECT_GE(locked.llcMissRate() + 0.02, full.llcMissRate());
}

TEST_F(PerfSimTest, HundredKiBIsNoise)
{
    const PerfSimulator simulator(config_);
    const std::vector<WorkloadParams> workloads(
        8, WorkloadParams::preset("milc"));
    const PerfResult full =
        simulator.run(workloads, LlcRepairConfig::none(), 5);
    const PerfResult small = simulator.run(
        workloads, LlcRepairConfig::randomBytes(100 * 1024, 5), 5);
    double full_ipc = 0.0;
    double small_ipc = 0.0;
    for (unsigned i = 0; i < 8; ++i) {
        full_ipc += full.cores[i].ipc();
        small_ipc += small.cores[i].ipc();
    }
    EXPECT_NEAR(small_ipc / full_ipc, 1.0, 0.05);
}

TEST_F(PerfSimTest, WeightedSpeedupSaneBounds)
{
    const PerfSimulator simulator(config_);
    const std::vector<WorkloadParams> workloads(
        4, WorkloadParams::preset("bzip2"));
    std::vector<double> alone;
    for (const auto &w : workloads)
        alone.push_back(simulator.aloneIpc(w, 21));
    const PerfResult shared =
        simulator.run(workloads, LlcRepairConfig::none(), 21);
    const double ws = weightedSpeedup(shared, alone);
    EXPECT_GT(ws, 0.5);
    EXPECT_LE(ws, 4.6);  // <= N with a little measurement slack.
}

TEST(PowerIntegration, MoreTrafficMorePower)
{
    PerfConfig config;
    config.instructionsPerCore = 40000;
    config.warmupAccessesPerCore = 2000;
    const PerfSimulator simulator(config);
    const DramPowerModel model(DramPowerParams{}, config.dramTiming,
                               PerfConfig::dramGeometry().devicesPerRank());
    const std::vector<WorkloadParams> heavy(
        8, WorkloadParams::preset("lbm"));
    const std::vector<WorkloadParams> light(
        8, WorkloadParams::preset("sjeng"));
    const PerfResult r_heavy =
        simulator.run(heavy, LlcRepairConfig::none(), 9);
    const PerfResult r_light =
        simulator.run(light, LlcRepairConfig::none(), 9);
    // Compare per-instruction energy (power alone depends on elapsed
    // time, which the memory-bound workload stretches).
    uint64_t heavy_instr = 0;
    uint64_t light_instr = 0;
    for (unsigned i = 0; i < 8; ++i) {
        heavy_instr += r_heavy.cores[i].instructions;
        light_instr += r_light.cores[i].instructions;
    }
    EXPECT_GT(model.dynamicEnergyNj(r_heavy.dram) / heavy_instr,
              model.dynamicEnergyNj(r_light.dram) / light_instr);
}

} // namespace
} // namespace relaxfault
