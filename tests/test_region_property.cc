/**
 * @file
 * Property tests: the FaultRegion algebra (counts, enumeration,
 * pairwise and codeword-level intersection) must agree exactly with a
 * brute-force cell-set model on randomized regions over a scaled-down
 * geometry.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "faults/region.h"

namespace relaxfault {
namespace {

DramGeometry
tinyGeometry()
{
    DramGeometry geometry;
    geometry.banksPerDevice = 4;
    geometry.rowsPerBank = 32;
    geometry.colBlocksPerRow = 16;
    return geometry;
}

using Cell = std::tuple<unsigned, uint32_t, uint16_t>;

/** Brute-force model: slice -> united bit mask. */
std::map<Cell, uint32_t>
materialize(const FaultRegion &region, const DramGeometry &geometry)
{
    std::map<Cell, uint32_t> cells;
    for (const auto &cluster : region.clusters()) {
        for (unsigned bank = 0; bank < geometry.banksPerDevice; ++bank) {
            if (!(cluster.bankMask & (1u << bank)))
                continue;
            for (uint32_t row = 0; row < geometry.rowsPerBank; ++row) {
                if (!cluster.rows.contains(row))
                    continue;
                for (uint16_t col = 0; col < geometry.colBlocksPerRow;
                     ++col) {
                    if (!cluster.cols.contains(col))
                        continue;
                    cells[{bank, row, col}] |= cluster.bitMask;
                }
            }
        }
    }
    return cells;
}

FaultRegion
randomRegion(Rng &rng, const DramGeometry &geometry)
{
    const unsigned cluster_count = 1 + rng.uniformInt(3);
    std::vector<RegionCluster> clusters;
    for (unsigned c = 0; c < cluster_count; ++c) {
        RegionCluster cluster;
        cluster.bankMask = static_cast<uint32_t>(
            1 + rng.uniformInt(maskBits(geometry.banksPerDevice)));
        if (rng.bernoulli(0.15)) {
            cluster.rows = RowSet::allRows();
        } else {
            std::vector<uint32_t> rows;
            const unsigned count = 1 + rng.uniformInt(6);
            for (unsigned i = 0; i < count; ++i)
                rows.push_back(static_cast<uint32_t>(
                    rng.uniformInt(geometry.rowsPerBank)));
            cluster.rows = RowSet::of(std::move(rows));
        }
        if (rng.bernoulli(0.3)) {
            cluster.cols = ColSet::allCols();
        } else {
            std::vector<uint16_t> cols;
            const unsigned count = 1 + rng.uniformInt(4);
            for (unsigned i = 0; i < count; ++i)
                cols.push_back(static_cast<uint16_t>(
                    rng.uniformInt(geometry.colBlocksPerRow)));
            cluster.cols = ColSet::of(std::move(cols));
        }
        cluster.bitMask = static_cast<uint32_t>(rng.next() | 1);
        clusters.push_back(std::move(cluster));
    }
    return FaultRegion(std::move(clusters));
}

class RegionProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RegionProperty, SliceCountMatchesBruteForceWhenDisjoint)
{
    // lineSliceCount sums clusters (documented as exact for sampler
    // output, which uses disjoint clusters) — force disjoint banks.
    const DramGeometry geometry = tinyGeometry();
    Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        FaultRegion region = randomRegion(rng, geometry);
        // Make clusters bank-disjoint by intersecting masks away.
        std::vector<RegionCluster> disjoint;
        uint32_t used = 0;
        for (auto cluster : region.clusters()) {
            cluster.bankMask &= ~used;
            if (cluster.bankMask == 0)
                continue;
            used |= cluster.bankMask;
            disjoint.push_back(std::move(cluster));
        }
        const FaultRegion clean(std::move(disjoint));
        EXPECT_EQ(clean.lineSliceCount(geometry),
                  materialize(clean, geometry).size());
    }
}

TEST_P(RegionProperty, SliceMaskMatchesBruteForce)
{
    const DramGeometry geometry = tinyGeometry();
    Rng rng(GetParam() + 1000);
    for (int i = 0; i < 20; ++i) {
        const FaultRegion region = randomRegion(rng, geometry);
        const auto cells = materialize(region, geometry);
        for (unsigned bank = 0; bank < geometry.banksPerDevice; ++bank) {
            for (uint32_t row = 0; row < geometry.rowsPerBank; ++row) {
                for (uint16_t col = 0; col < geometry.colBlocksPerRow;
                     ++col) {
                    const auto it = cells.find({bank, row, col});
                    const uint32_t expected =
                        it == cells.end() ? 0 : it->second;
                    ASSERT_EQ(region.sliceMask(bank, row, col), expected);
                }
            }
        }
    }
}

TEST_P(RegionProperty, ForEachSliceVisitsBruteForceSet)
{
    const DramGeometry geometry = tinyGeometry();
    Rng rng(GetParam() + 2000);
    for (int i = 0; i < 30; ++i) {
        const FaultRegion region = randomRegion(rng, geometry);
        const auto cells = materialize(region, geometry);
        std::set<Cell> visited;
        region.forEachSlice(geometry,
                            [&](unsigned bank, uint32_t row,
                                uint16_t col) {
                                visited.insert({bank, row, col});
                            });
        std::set<Cell> expected;
        for (const auto &[cell, mask] : cells) {
            (void)mask;
            expected.insert(cell);
        }
        ASSERT_EQ(visited, expected);
    }
}

TEST_P(RegionProperty, CodewordIntersectMatchesBruteForce)
{
    const DramGeometry geometry = tinyGeometry();
    Rng rng(GetParam() + 3000);
    auto symbol_mask = [](uint32_t mask) {
        uint32_t symbols = 0;
        for (unsigned s = 0; s < 4; ++s) {
            if (mask & (0xffu << (8 * s)))
                symbols |= 1u << s;
        }
        return symbols;
    };
    for (int i = 0; i < 30; ++i) {
        const FaultRegion a = randomRegion(rng, geometry);
        const FaultRegion b = randomRegion(rng, geometry);
        const auto cells_a = materialize(a, geometry);
        const auto cells_b = materialize(b, geometry);

        // Brute force: slices where both err in a shared symbol.
        std::set<Cell> expected;
        for (const auto &[cell, mask] : cells_a) {
            const auto it = cells_b.find(cell);
            if (it == cells_b.end())
                continue;
            if (symbol_mask(mask) & symbol_mask(it->second))
                expected.insert(cell);
        }

        const FaultRegion overlap =
            FaultRegion::codewordIntersect(a, b, geometry);
        const auto overlap_cells = materialize(overlap, geometry);
        std::set<Cell> got;
        for (const auto &[cell, mask] : overlap_cells) {
            (void)mask;
            got.insert(cell);
        }
        ASSERT_EQ(got, expected);
        // Emptiness agreement is what the DUE classifier relies on.
        ASSERT_EQ(overlap.lineSliceCount(geometry) == 0,
                  expected.empty());
    }
}

TEST_P(RegionProperty, PairIntersectCountIsUpperBoundedBySizes)
{
    const DramGeometry geometry = tinyGeometry();
    Rng rng(GetParam() + 4000);
    for (int i = 0; i < 50; ++i) {
        const FaultRegion a = randomRegion(rng, geometry);
        const FaultRegion b = randomRegion(rng, geometry);
        const uint64_t overlap =
            FaultRegion::intersectLineCount(a, b, geometry);
        // Cluster-pairwise counting can overcount overlapping clusters
        // but never undercounts the brute-force intersection.
        const auto cells_a = materialize(a, geometry);
        const auto cells_b = materialize(b, geometry);
        uint64_t brute = 0;
        for (const auto &[cell, mask] : cells_a) {
            (void)mask;
            brute += cells_b.count(cell);
        }
        EXPECT_GE(overlap, brute);
        if (brute == 0) {
            // No false positives on disjoint regions.
            EXPECT_EQ(overlap, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace relaxfault
