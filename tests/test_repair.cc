/**
 * @file
 * Tests for the repair mechanisms: the RelaxFault coalescing map
 * (injectivity, deterministic set spreading for correlated faults), the
 * line tracker's transactional limits, RelaxFault/FreeFault/PPR repair
 * semantics, and the coverage evaluator. Several tests check the paper's
 * qualitative claims directly (e.g., FreeFault needs ~16x the lines,
 * column faults defeat unhashed FreeFault).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "repair/coverage.h"
#include "repair/freefault_repair.h"
#include "repair/no_repair.h"
#include "repair/ppr_repair.h"
#include "repair/relaxfault_repair.h"

namespace relaxfault {
namespace {

DramGeometry
geom()
{
    return DramGeometry{};
}

CacheGeometry
llc()
{
    return CacheGeometry{8 * 1024 * 1024, 16, 64};
}

FaultRecord
makeFault(FaultRegion region, unsigned dimm = 0, unsigned device = 0)
{
    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    fault.parts.push_back({dimm, device, std::move(region)});
    return fault;
}

FaultRegion
rowFault(unsigned bank, uint32_t row)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

FaultRegion
columnFault(unsigned bank, uint32_t first_row, unsigned row_count,
            uint16_t col, uint32_t bit = 0)
{
    std::vector<uint32_t> rows;
    for (unsigned i = 0; i < row_count; ++i)
        rows.push_back(first_row + i);
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of(std::move(rows));
    cluster.cols = ColSet::of({col});
    cluster.bitMask = 1u << bit;
    return FaultRegion({cluster});
}

FaultRegion
bitFault(unsigned bank, uint32_t row, uint16_t col)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::of({col});
    cluster.bitMask = 1;
    return FaultRegion({cluster});
}

FaultRegion
massiveBank(unsigned bank)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::allRows();
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

class RelaxFaultMapTest : public ::testing::TestWithParam<bool>
{
};

TEST_P(RelaxFaultMapTest, LocateInvertRoundTrip)
{
    const RelaxFaultMap map(geom(), llc(), GetParam());
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        RemapUnit unit;
        unit.dimm = static_cast<unsigned>(rng.uniformInt(8));
        unit.device = static_cast<unsigned>(rng.uniformInt(18));
        unit.bank = static_cast<unsigned>(rng.uniformInt(8));
        unit.row = static_cast<uint32_t>(rng.uniformInt(65536));
        unit.colGroup = static_cast<uint16_t>(rng.uniformInt(16));
        const RemapLocation loc = map.locate(unit);
        ASSERT_LT(loc.set, llc().sets());
        EXPECT_EQ(map.invert(loc), unit);
    }
}

TEST_P(RelaxFaultMapTest, RowFaultSpreadsAcrossDistinctSets)
{
    // The 16 remap units of one device row must land in 16 distinct
    // sets by construction (colGroup is part of the index).
    const RelaxFaultMap map(geom(), llc(), GetParam());
    std::vector<uint64_t> sets;
    RemapUnit unit{0, 3, 2, 12345, 0};
    for (uint16_t g = 0; g < 16; ++g) {
        unit.colGroup = g;
        sets.push_back(map.locate(unit).set);
    }
    std::sort(sets.begin(), sets.end());
    EXPECT_EQ(std::unique(sets.begin(), sets.end()) - sets.begin(), 16);
}

TEST_P(RelaxFaultMapTest, ColumnFaultSpreadsAcrossDistinctSets)
{
    // Units that differ only in low row bits (a subarray-local column
    // fault) land in distinct sets: row-low is part of the index.
    const RelaxFaultMap map(geom(), llc(), GetParam());
    std::vector<uint64_t> sets;
    RemapUnit unit{1, 7, 4, 0, 3};
    const uint32_t base = 512 * 17;  // Some subarray.
    for (uint32_t r = 0; r < 512; ++r) {
        unit.row = base + r;
        sets.push_back(map.locate(unit).set);
    }
    std::sort(sets.begin(), sets.end());
    EXPECT_EQ(std::unique(sets.begin(), sets.end()) - sets.begin(), 512);
}

INSTANTIATE_TEST_SUITE_P(FoldModes, RelaxFaultMapTest, ::testing::Bool());

TEST(RelaxFaultMapTest2, DifferentDevicesDifferentTags)
{
    const RelaxFaultMap map(geom(), llc(), true);
    RemapUnit a{0, 3, 2, 100, 5};
    RemapUnit b = a;
    b.device = 4;
    EXPECT_NE(map.locate(a).tag, map.locate(b).tag);
}

TEST(LineTracker, TransactionalWayLimit)
{
    RepairLineTracker tracker(16, RepairBudget{2, 100});
    // Three lines into one set exceeds the 2-way limit: all-or-nothing.
    EXPECT_FALSE(tracker.tryAdd({{5, 1}, {5, 2}, {5, 3}}));
    EXPECT_EQ(tracker.usedLines(), 0u);
    EXPECT_TRUE(tracker.tryAdd({{5, 1}, {5, 2}}));
    EXPECT_EQ(tracker.usedLines(), 2u);
    EXPECT_EQ(tracker.setLoad(5), 2u);
    // Set 5 is now full.
    EXPECT_FALSE(tracker.tryAdd({{5, 9}}));
    // Re-adding an existing key is free sharing.
    EXPECT_TRUE(tracker.tryAdd({{5, 1}}));
    EXPECT_EQ(tracker.usedLines(), 2u);
}

TEST(LineTracker, CapacityLimit)
{
    RepairLineTracker tracker(1024, RepairBudget{16, 4});
    EXPECT_TRUE(tracker.tryAdd({{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
    EXPECT_FALSE(tracker.tryAdd({{4, 5}}));
    EXPECT_EQ(tracker.maxWaysUsed(), 1u);
}

TEST(LineTracker, DuplicatesWithinRequestCountOnce)
{
    RepairLineTracker tracker(16, RepairBudget{1, 10});
    EXPECT_TRUE(tracker.tryAdd({{3, 7}, {3, 7}, {3, 7}}));
    EXPECT_EQ(tracker.usedLines(), 1u);
    EXPECT_EQ(tracker.setLoad(3), 1u);
}

class RelaxFaultRepairTest : public ::testing::Test
{
  protected:
    RelaxFaultRepair repair_{geom(), llc(), RepairBudget{1, 32768}, true};
};

TEST_F(RelaxFaultRepairTest, BitFaultUsesOneLine)
{
    EXPECT_TRUE(repair_.tryRepair(makeFault(bitFault(0, 10, 20))));
    EXPECT_EQ(repair_.usedLines(), 1u);
    EXPECT_EQ(repair_.maxWaysUsed(), 1u);
    EXPECT_TRUE(repair_.bankFlagged(0, 0));
    EXPECT_FALSE(repair_.bankFlagged(0, 1));
    EXPECT_TRUE(repair_.unitRepaired(RemapUnit{0, 0, 0, 10, 1}));
    EXPECT_FALSE(repair_.unitRepaired(RemapUnit{0, 0, 0, 11, 1}));
}

TEST_F(RelaxFaultRepairTest, RowFaultUses16LinesAt1Way)
{
    EXPECT_TRUE(repair_.tryRepair(makeFault(rowFault(3, 4242))));
    EXPECT_EQ(repair_.usedLines(), 16u);
    EXPECT_EQ(repair_.maxWaysUsed(), 1u);  // Spread by construction.
}

TEST_F(RelaxFaultRepairTest, SubarrayColumnFaultRepairableAt1Way)
{
    EXPECT_TRUE(repair_.tryRepair(
        makeFault(columnFault(2, 512 * 9, 512, 33))));
    EXPECT_EQ(repair_.usedLines(), 512u);
    EXPECT_EQ(repair_.maxWaysUsed(), 1u);
}

TEST_F(RelaxFaultRepairTest, MassiveBankUnrepairable)
{
    EXPECT_FALSE(repair_.tryRepair(makeFault(massiveBank(1))));
    EXPECT_EQ(repair_.usedLines(), 0u);
    EXPECT_FALSE(repair_.bankFlagged(0, 1));
}

TEST_F(RelaxFaultRepairTest, FailedRepairLeavesStateUnchanged)
{
    EXPECT_TRUE(repair_.tryRepair(makeFault(bitFault(0, 1, 1))));
    const uint64_t before = repair_.usedLines();
    // Same rows in the same device/bank collide set-wise with a second
    // identical-row fault in a different column group? No — force a
    // conflict by exceeding capacity instead.
    RelaxFaultRepair tiny(geom(), llc(), RepairBudget{1, 8}, true);
    EXPECT_FALSE(tiny.tryRepair(makeFault(rowFault(0, 5))));
    EXPECT_EQ(tiny.usedLines(), 0u);
    EXPECT_EQ(repair_.usedLines(), before);
}

TEST_F(RelaxFaultRepairTest, SharedUnitsNotDoubleCounted)
{
    // Two bit faults in the same 64B device sub-block share a line.
    EXPECT_TRUE(repair_.tryRepair(makeFault(bitFault(0, 10, 20))));
    EXPECT_TRUE(repair_.tryRepair(makeFault(bitFault(0, 10, 21))));
    EXPECT_EQ(repair_.usedLines(), 1u);
}

TEST_F(RelaxFaultRepairTest, ResetReleasesEverything)
{
    EXPECT_TRUE(repair_.tryRepair(makeFault(rowFault(0, 1))));
    repair_.reset();
    EXPECT_EQ(repair_.usedLines(), 0u);
    EXPECT_FALSE(repair_.bankFlagged(0, 0));
}

TEST(FreeFaultTest, RowFaultUses256Lines)
{
    const DramAddressMap map(geom(), true);
    FreeFaultRepair repair(map, llc(), RepairBudget{1, 32768}, true);
    EXPECT_TRUE(repair.tryRepair(makeFault(rowFault(0, 100))));
    // 16x the lines RelaxFault needs for the same fault (paper Sec. 1).
    EXPECT_EQ(repair.usedLines(), 256u);
}

TEST(FreeFaultTest, RowFaultRepairableWithoutHash)
{
    // Column-block bits reach the set index, so a row's 256 lines fall
    // into 256 distinct sets even without hashing.
    const DramAddressMap map(geom(), true);
    FreeFaultRepair repair(map, llc(), RepairBudget{1, 32768}, false);
    EXPECT_TRUE(repair.tryRepair(makeFault(rowFault(5, 31000))));
    EXPECT_EQ(repair.maxWaysUsed(), 1u);
}

TEST(FreeFaultTest, ColumnFaultDefeatsUnhashedLlc)
{
    // All lines of a column fault share channel/column/bank/rank bits:
    // one set, many lines -> unrepairable without XOR hashing (Fig. 8).
    const DramAddressMap map(geom(), true);
    FreeFaultRepair unhashed(map, llc(), RepairBudget{1, 32768}, false);
    EXPECT_FALSE(unhashed.tryRepair(
        makeFault(columnFault(1, 512 * 3, 24, 77))));

    FreeFaultRepair hashed(map, llc(), RepairBudget{1, 32768}, true);
    EXPECT_TRUE(hashed.tryRepair(
        makeFault(columnFault(1, 512 * 3, 24, 77))));
}

TEST(FreeFaultTest, ColumnFaultEvenDefeats16WayUnhashed)
{
    // The memory controller's bank XOR permutation spreads a column
    // fault over at most 2^bankBits = 8 sets, so a large column fault
    // (~64 lines per set) exceeds even full associativity when the LLC
    // set index is unhashed.
    const DramAddressMap map(geom(), true);
    FreeFaultRepair unhashed(map, llc(), RepairBudget{16, 32768}, false);
    EXPECT_FALSE(unhashed.tryRepair(
        makeFault(columnFault(1, 512 * 3, 512, 77))));
    // A small column fault (<= 8 lines, one per permuted bank value)
    // can still fit in 16 ways.
    EXPECT_TRUE(unhashed.tryRepair(
        makeFault(columnFault(1, 512 * 3, 8, 77))));
}

TEST(FreeFaultTest, MassiveAndOversizedRejected)
{
    const DramAddressMap map(geom(), true);
    FreeFaultRepair repair(map, llc(), RepairBudget{16, 32768}, true);
    EXPECT_FALSE(repair.tryRepair(makeFault(massiveBank(0))));
    // A 512-row medium bank fault needs 131072 lines > 32768 budget.
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < 512; ++r)
        rows.push_back(r * 128);
    RegionCluster cluster;
    cluster.bankMask = 1;
    cluster.rows = RowSet::of(std::move(rows));
    cluster.cols = ColSet::allCols();
    EXPECT_FALSE(repair.tryRepair(makeFault(FaultRegion({cluster}))));
    EXPECT_EQ(repair.usedLines(), 0u);
}

TEST(PprTest, SingleRowRepairable)
{
    PprRepair ppr(geom());
    EXPECT_TRUE(ppr.tryRepair(makeFault(rowFault(0, 7))));
    EXPECT_EQ(ppr.sparesUsed(), 1u);
    EXPECT_TRUE(ppr.rowRepaired(0, 0, 0, 7));
    EXPECT_EQ(ppr.usedLines(), 0u);  // No LLC cost.
}

TEST(PprTest, BitFaultConsumesSpareRow)
{
    PprRepair ppr(geom());
    EXPECT_TRUE(ppr.tryRepair(makeFault(bitFault(3, 9, 4))));
    EXPECT_EQ(ppr.sparesUsed(), 1u);
}

TEST(PprTest, SecondRowInSameBankGroupFails)
{
    PprRepair ppr(geom());
    // Banks 0 and 1 share bank group 0 (8 banks / 4 groups).
    EXPECT_TRUE(ppr.tryRepair(makeFault(rowFault(0, 7))));
    EXPECT_FALSE(ppr.tryRepair(makeFault(rowFault(1, 9))));
    // A row in another group still works.
    EXPECT_TRUE(ppr.tryRepair(makeFault(rowFault(2, 9))));
    // Other devices have their own spares.
    EXPECT_TRUE(ppr.tryRepair(makeFault(rowFault(0, 11), 0, 5)));
}

TEST(PprTest, MultiRowColumnFaultUnrepairable)
{
    PprRepair ppr(geom());
    EXPECT_FALSE(ppr.tryRepair(makeFault(columnFault(0, 0, 2, 5))));
    EXPECT_EQ(ppr.sparesUsed(), 0u);
    // A single-row column fault is fine.
    EXPECT_TRUE(ppr.tryRepair(makeFault(columnFault(0, 0, 1, 5))));
}

TEST(PprTest, MassiveRejected)
{
    PprRepair ppr(geom());
    EXPECT_FALSE(ppr.tryRepair(makeFault(massiveBank(2))));
}

TEST(PprTest, SameRowTwiceSharesSpare)
{
    PprRepair ppr(geom());
    EXPECT_TRUE(ppr.tryRepair(makeFault(bitFault(0, 7, 1))));
    EXPECT_TRUE(ppr.tryRepair(makeFault(bitFault(0, 7, 200))));
    EXPECT_EQ(ppr.sparesUsed(), 1u);
}

TEST(NoRepairTest, AlwaysFails)
{
    NoRepair none;
    EXPECT_FALSE(none.tryRepair(makeFault(bitFault(0, 0, 0))));
    EXPECT_EQ(none.usedLines(), 0u);
}

TEST(Coverage, RelaxFaultBeatsFreeFaultBeatsNothing)
{
    CoverageConfig config;
    config.faultyNodeTarget = 1500;
    CoverageEvaluator evaluator(config);

    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry cache = llc();
    const RepairBudget budget{1, 32768};

    Rng rng_a(42);
    const CoverageResult relax = evaluator.run(
        [&] {
            return std::make_unique<RelaxFaultRepair>(geometry, cache,
                                                      budget, true);
        },
        rng_a);
    Rng rng_b(42);
    const DramAddressMap map(geometry, true);
    const CoverageResult free_fault = evaluator.run(
        [&] {
            return std::make_unique<FreeFaultRepair>(map, cache, budget,
                                                     true);
        },
        rng_b);
    Rng rng_c(42);
    const CoverageResult none = evaluator.run(
        [&] { return std::make_unique<NoRepair>(); }, rng_c);

    EXPECT_GT(relax.coverage(), free_fault.coverage());
    EXPECT_GT(free_fault.coverage(), 0.5);
    EXPECT_EQ(none.repairedNodes, 0u);
    EXPECT_GT(relax.coverage(), 0.8);

    // Coverage-at-capacity is monotone and bounded by final coverage.
    EXPECT_LE(relax.coverageAtCapacity(64 * 1024),
              relax.coverageAtCapacity(2 * 1024 * 1024) + 1e-12);
    EXPECT_LE(relax.coverageAtCapacity(2 * 1024 * 1024),
              relax.coverage() + 1e-12);
}

TEST(Coverage, FaultyFractionNearPoissonPrediction)
{
    CoverageConfig config;
    config.faultyNodeTarget = 2000;
    config.faultModel.accelerationEnabled = false;
    CoverageEvaluator evaluator(config);
    Rng rng(7);
    const CoverageResult result = evaluator.run(
        [] { return std::make_unique<NoRepair>(); }, rng);
    // 20 FIT/device permanent * 144 devices * 52596h => P ~ 13.4%.
    const double lambda = 20e-9 * 144 * config.faultModel.missionHours;
    const double expected = 1.0 - std::exp(-lambda);
    EXPECT_NEAR(result.faultyFraction(), expected, 0.02);
}


TEST(Coverage, PaperAnchorsRegression)
{
    // Regression net for the calibration: the headline Fig. 8/10
    // anchors must stay inside bands around the paper's values. If a
    // fault-model change moves these, EXPERIMENTS.md needs updating.
    CoverageConfig config;
    config.faultyNodeTarget = 5000;
    const CoverageEvaluator evaluator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry cache{8 * 1024 * 1024, 16, 64};
    const RepairBudget budget{1, 32768};
    const DramAddressMap map(geometry, true);

    Rng rng_a(20160618);
    const double relax = evaluator.run(
        [&] {
            return std::make_unique<RelaxFaultRepair>(geometry, cache,
                                                      budget, true);
        },
        rng_a).coverage();
    Rng rng_b(20160618);
    const double free_hash = evaluator.run(
        [&] {
            return std::make_unique<FreeFaultRepair>(map, cache, budget,
                                                     true);
        },
        rng_b).coverage();
    Rng rng_c(20160618);
    const double ppr = evaluator.run(
        [&] { return std::make_unique<PprRepair>(geometry); },
        rng_c).coverage();

    // Paper: 90.3 / 84.2 / ~73 (%); bands allow Monte Carlo noise plus
    // our documented calibration offsets.
    EXPECT_GT(relax, 0.87);
    EXPECT_LT(relax, 0.94);
    EXPECT_GT(free_hash, 0.83);
    EXPECT_LT(free_hash, 0.91);
    EXPECT_GT(ppr, 0.71);
    EXPECT_LT(ppr, 0.80);
    EXPECT_GT(relax, free_hash);
    EXPECT_GT(free_hash, ppr);
}

} // namespace
} // namespace relaxfault
