/**
 * @file
 * Tests of the patrol scrubber: discovery of injected faults through the
 * ECC-correction log, shape inference (bit vs row vs column), repair via
 * the inferred records, and the post-repair clean bill of health.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "core/scrubber.h"

namespace relaxfault {
namespace {

class ScrubberTest : public ::testing::Test
{
  protected:
    ScrubberTest() : controller_(makeConfig()), scrubber_(controller_) {}

    static ControllerConfig
    makeConfig()
    {
        ControllerConfig config;
        config.budget = RepairBudget{4, 32768};
        return config;
    }

    /** Write nonzero data so stuck-at cells actually produce errors. */
    void
    writeRegion(unsigned bank, uint32_t row_begin, uint32_t rows)
    {
        Rng rng(99);
        uint8_t data[64];
        for (uint32_t r = 0; r < rows; ++r) {
            for (unsigned col = 0;
                 col < controller_.config().geometry.colBlocksPerRow;
                 ++col) {
                for (auto &byte : data)
                    byte = static_cast<uint8_t>(rng.uniformInt(256));
                LineCoord coord{0, 0, bank, row_begin + r,
                                static_cast<unsigned>(col)};
                controller_.write(controller_.addressMap().encode(coord),
                                  data);
            }
        }
    }

    /** Inject a raw fault into the array (not reported to anyone). */
    void
    injectSilently(unsigned device, FaultRegion region)
    {
        FaultRecord fault;
        fault.persistence = Persistence::Permanent;
        fault.parts.push_back({0, device, std::move(region)});
        // Insert into the fault set directly: damage exists, the
        // controller does not know.
        const_cast<FaultSet &>(controller_.faults()).addFault(fault);
    }

    RelaxFaultController controller_;
    FaultScrubber scrubber_;
};

FaultRegion
rowRegion(unsigned bank, uint32_t row)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

FaultRegion
columnRegion(unsigned bank, std::vector<uint32_t> rows, uint16_t col)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of(std::move(rows));
    cluster.cols = ColSet::of({col});
    cluster.bitMask = 0xff;  // One symbol's worth of stuck bits.
    return FaultRegion({cluster});
}

TEST_F(ScrubberTest, CleanMemoryNothingInferred)
{
    writeRegion(0, 100, 2);
    scrubber_.scrub(0, 0, 0, 100, 2);
    EXPECT_EQ(scrubber_.observationCount(), 0u);
    const auto report = scrubber_.inferAndRepair();
    EXPECT_EQ(report.faultsInferred, 0u);
    EXPECT_EQ(report.correctedLines, 0u);
    EXPECT_EQ(report.linesScrubbed, 2u * 256);
}

TEST_F(ScrubberTest, DiscoversAndRepairsRowFault)
{
    writeRegion(1, 500, 1);
    injectSilently(6, rowRegion(1, 500));

    scrubber_.scrub(0, 0, 1, 500, 1);
    EXPECT_GT(scrubber_.observationCount(), 200u);  // Most blocks err.
    const auto report = scrubber_.inferAndRepair();
    EXPECT_EQ(report.faultsInferred, 1u);
    EXPECT_EQ(report.faultsRepaired, 1u);
    EXPECT_GT(report.correctedLines, 200u);

    // The repaired row now reads without any correction activity.
    FaultScrubber second(controller_);
    second.scrub(0, 0, 1, 500, 1);
    EXPECT_EQ(second.observationCount(), 0u);
    // The full row (16 remap units) is locked.
    EXPECT_EQ(controller_.repair().usedLines(), 16u);
}

TEST_F(ScrubberTest, DiscoversColumnFaultAcrossRows)
{
    writeRegion(2, 1000, 8);
    injectSilently(9, columnRegion(2, {1000, 1002, 1004, 1006}, 33));

    scrubber_.scrub(0, 0, 2, 1000, 8);
    const auto report = scrubber_.inferAndRepair();
    EXPECT_EQ(report.faultsInferred, 1u);
    EXPECT_EQ(report.faultsRepaired, 1u);

    FaultScrubber second(controller_);
    second.scrub(0, 0, 2, 1000, 8);
    EXPECT_EQ(second.observationCount(), 0u);
}

TEST_F(ScrubberTest, IsolatedBitFaultRepairedExactly)
{
    writeRegion(3, 42, 1);
    RegionCluster cluster;
    cluster.bankMask = 1u << 3;
    cluster.rows = RowSet::of({42});
    cluster.cols = ColSet::of({7});
    cluster.bitMask = 0xf;
    injectSilently(2, FaultRegion({cluster}));

    scrubber_.scrub(0, 0, 3, 42, 1);
    const auto report = scrubber_.inferAndRepair();
    EXPECT_EQ(report.faultsInferred, 1u);
    EXPECT_EQ(report.faultsRepaired, 1u);
    EXPECT_EQ(controller_.repair().usedLines(), 1u);
}

TEST_F(ScrubberTest, TwoDevicesTwoRecords)
{
    writeRegion(4, 300, 2);
    injectSilently(1, rowRegion(4, 300));
    injectSilently(8, rowRegion(4, 301));

    scrubber_.scrub(0, 0, 4, 300, 2);
    const auto report = scrubber_.inferAndRepair();
    EXPECT_EQ(report.faultsInferred, 2u);
    EXPECT_EQ(report.faultsRepaired, 2u);
    EXPECT_EQ(controller_.repair().usedLines(), 32u);
}

TEST_F(ScrubberTest, RepeatedScrubIsIdempotent)
{
    writeRegion(5, 10, 1);
    injectSilently(4, rowRegion(5, 10));
    scrubber_.scrub(0, 0, 5, 10, 1);
    scrubber_.inferAndRepair();
    const uint64_t lines = controller_.repair().usedLines();

    FaultScrubber again(controller_);
    again.scrub(0, 0, 5, 10, 1);
    const auto report = again.inferAndRepair();
    EXPECT_EQ(report.faultsInferred, 0u);
    EXPECT_EQ(controller_.repair().usedLines(), lines);
}

TEST_F(ScrubberTest, StuckCellsMatchingDataAreInvisible)
{
    // Write all-zero data and stick bits at zero: no errors, nothing
    // to discover — faults only manifest through mismatching accesses.
    uint8_t zeros[64] = {};
    LineCoord coord{0, 0, 6, 77, 3};
    controller_.write(controller_.addressMap().encode(coord), zeros);

    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    RegionCluster cluster;
    cluster.bankMask = 1u << 6;
    cluster.rows = RowSet::of({77});
    cluster.cols = ColSet::of({3});
    cluster.bitMask = 0x1;
    fault.parts.push_back({0, 5, FaultRegion({cluster})});
    // Stuck value for this coordinate may be 0 or 1; we only assert the
    // scrubber stays consistent with what the ECC reports.
    const_cast<FaultSet &>(controller_.faults()).addFault(fault);

    scrubber_.scrub(0, 0, 6, 77, 1);
    const auto report = scrubber_.inferAndRepair();
    FaultScrubber second(controller_);
    second.scrub(0, 0, 6, 77, 1);
    const auto clean = second.inferAndRepair();
    EXPECT_EQ(clean.faultsInferred, 0u);
    (void)report;
}

} // namespace
} // namespace relaxfault
