/**
 * @file
 * Property tests for the bounded lock-free MPMC shard ring.
 *
 * The load-bearing properties: no value is ever lost or duplicated
 * under concurrent producers and consumers, values pop fully written
 * (each consumer observes its producers' values in per-producer FIFO
 * order), and full/empty are reported rather than blocked on. The MPMC
 * stress test is the one CI also runs under ThreadSanitizer — the ring
 * is the only cross-process synchronization point of worker mode, so
 * its memory ordering must hold up to a model checker, not just to
 * x86's strong ordering.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/process.h"
#include "common/shm_ring.h"

namespace relaxfault {
namespace {

TEST(ShmRing, CapacityRoundsUpToPowerOfTwoMinTwo)
{
    EXPECT_EQ(ShmRing::create(0).capacity(), 2u);
    EXPECT_EQ(ShmRing::create(1).capacity(), 2u);
    EXPECT_EQ(ShmRing::create(2).capacity(), 2u);
    EXPECT_EQ(ShmRing::create(3).capacity(), 4u);
    EXPECT_EQ(ShmRing::create(5).capacity(), 8u);
    EXPECT_EQ(ShmRing::create(64).capacity(), 64u);
    EXPECT_EQ(ShmRing::create(65).capacity(), 128u);
}

TEST(ShmRing, SingleThreadFifo)
{
    ShmRing ring = ShmRing::create(16);
    for (uint64_t v = 0; v < 16; ++v)
        EXPECT_TRUE(ring.tryPush(v * 3 + 1));
    for (uint64_t v = 0; v < 16; ++v) {
        uint64_t popped = 0;
        ASSERT_TRUE(ring.tryPop(popped));
        EXPECT_EQ(popped, v * 3 + 1);
    }
}

TEST(ShmRing, FullAndEmptyAreReportedNotBlockedOn)
{
    ShmRing ring = ShmRing::create(4);
    uint64_t value = 0;
    EXPECT_FALSE(ring.tryPop(value));  // Empty from the start.
    for (uint64_t v = 0; v < ring.capacity(); ++v)
        EXPECT_TRUE(ring.tryPush(v));
    EXPECT_FALSE(ring.tryPush(99));    // Full: refused, not overwritten.
    ASSERT_TRUE(ring.tryPop(value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(ring.tryPush(99));     // One slot recycled.
    for (uint64_t v = 1; v < ring.capacity(); ++v) {
        ASSERT_TRUE(ring.tryPop(value));
        EXPECT_EQ(value, v);
    }
    ASSERT_TRUE(ring.tryPop(value));
    EXPECT_EQ(value, 99u);
    EXPECT_FALSE(ring.tryPop(value));  // Drained.
}

TEST(ShmRing, SequencesSurviveManyWraparounds)
{
    // Push/pop far past capacity so every slot's sequence laps many
    // times; a sequence-recycling bug shows up as a refused push or a
    // stale value.
    ShmRing ring = ShmRing::create(4);
    uint64_t next_pop = 0;
    for (uint64_t v = 0; v < 10000; ++v) {
        ASSERT_TRUE(ring.tryPush(v));
        if (v % 3 == 0) {  // Drain lags pushes but never past capacity.
            uint64_t popped = 0;
            ASSERT_TRUE(ring.tryPop(popped));
            EXPECT_EQ(popped, next_pop++);
        }
        if (ring.sizeApprox() == ring.capacity()) {
            uint64_t popped = 0;
            ASSERT_TRUE(ring.tryPop(popped));
            EXPECT_EQ(popped, next_pop++);
        }
    }
    uint64_t popped = 0;
    while (ring.tryPop(popped))
        EXPECT_EQ(popped, next_pop++);
    EXPECT_EQ(next_pop, 10000u);
}

/**
 * 4 producers x 4 consumers over a small ring. Checks, across the whole
 * run: every value pushed is popped exactly once (no loss, no
 * duplication), and each consumer sees any given producer's values in
 * strictly increasing sequence order (per-producer FIFO — the ring's
 * ordering guarantee; cross-producer order is unspecified).
 */
TEST(ShmRing, MpmcNoLossNoDupPerProducerFifo)
{
    constexpr unsigned kProducers = 4;
    constexpr unsigned kConsumers = 4;
    constexpr uint64_t kPerProducer = 20000;
    constexpr uint64_t kTotal = kProducers * kPerProducer;

    ShmRing ring = ShmRing::create(64);
    std::atomic<uint64_t> popped_total{0};

    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ring, p]() {
            for (uint64_t seq = 0; seq < kPerProducer; ++seq) {
                const uint64_t value = (uint64_t{p} << 32) | seq;
                while (!ring.tryPush(value))
                    std::this_thread::yield();
            }
        });
    }

    std::vector<std::vector<uint64_t>> popped(kConsumers);
    std::vector<std::thread> consumers;
    for (unsigned c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&ring, &popped_total, &popped, c]() {
            uint64_t value = 0;
            // Termination: the global pop count reaching kTotal is the
            // only exit; an empty ring mid-run just means producers are
            // behind.
            while (popped_total.load(std::memory_order_relaxed) <
                   kTotal) {
                if (ring.tryPop(value)) {
                    popped[c].push_back(value);
                    popped_total.fetch_add(1,
                                           std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &t : producers)
        t.join();
    for (auto &t : consumers)
        t.join();

    // No loss, no duplication: every (producer, seq) pair exactly once.
    std::vector<std::vector<uint64_t>> seen(
        kProducers, std::vector<uint64_t>(kPerProducer, 0));
    uint64_t total = 0;
    for (unsigned c = 0; c < kConsumers; ++c) {
        // Per-producer FIFO per consumer: sequences strictly increase.
        std::vector<int64_t> last(kProducers, -1);
        for (const uint64_t value : popped[c]) {
            const unsigned p = static_cast<unsigned>(value >> 32);
            const uint64_t seq = value & 0xffffffffu;
            ASSERT_LT(p, kProducers);
            ASSERT_LT(seq, kPerProducer);
            EXPECT_GT(static_cast<int64_t>(seq), last[p])
                << "consumer " << c << " saw producer " << p
                << " out of order";
            last[p] = static_cast<int64_t>(seq);
            ++seen[p][seq];
            ++total;
        }
    }
    EXPECT_EQ(total, kTotal);
    for (unsigned p = 0; p < kProducers; ++p)
        for (uint64_t seq = 0; seq < kPerProducer; ++seq)
            EXPECT_EQ(seen[p][seq], 1u)
                << "producer " << p << " seq " << seq;
}

TEST(ShmRing, SharedAcrossForkedProcesses)
{
    // The worker-mode usage: rings created before the fork, values
    // produced in one process and consumed in another. The child echoes
    // each request value + 1000 through a response ring.
    ShmRing requests = ShmRing::create(8);
    ShmRing responses = ShmRing::create(8);
    constexpr uint64_t kCount = 500;

    const pid_t child = spawnProcess([&requests, &responses]() {
        uint64_t echoed = 0;
        while (echoed < kCount) {
            uint64_t value = 0;
            if (!requests.tryPop(value))
                continue;
            while (!responses.tryPush(value + 1000))
                ;
            ++echoed;
        }
        return 0;
    });

    uint64_t received = 0;
    uint64_t sent = 0;
    while (received < kCount) {
        if (sent < kCount && requests.tryPush(sent))
            ++sent;
        uint64_t value = 0;
        if (responses.tryPop(value)) {
            EXPECT_EQ(value, received + 1000);
            ++received;
        }
    }
    const ProcessStatus status = waitProcess(child);
    EXPECT_TRUE(status.ok());
}

} // namespace
} // namespace relaxfault
