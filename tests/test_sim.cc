/**
 * @file
 * Tests for the lifetime simulator: the DUE/SDC classifier, replacement
 * policies, determinism, and the headline qualitative claims (repair
 * halves DUEs; ReplB is far more aggressive than ReplA; the accelerated
 * population dominates failure counts).
 *
 * Trial counts and seeds are baselined on the counter-based per-trial
 * derivation (`Rng::forkAt(seed, t)`) the parallel engine uses: every
 * summary below is a deterministic function of (config, trials, seed)
 * alone, so the statistical assertions were sized by inspecting those
 * exact runs. If a seed changes, re-check the margins — the counts
 * (24-48 trials) are chosen so each claim holds with slack, not just
 * barely.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"

namespace relaxfault {
namespace {

DramGeometry
geom()
{
    return DramGeometry{};
}

FaultRegion
bitRegion(unsigned bank, uint32_t row, uint16_t col, uint32_t mask)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::of({row});
    cluster.cols = ColSet::of({col});
    cluster.bitMask = mask;
    return FaultRegion({cluster});
}

FaultRegion
bankRegion(unsigned bank)
{
    RegionCluster cluster;
    cluster.bankMask = 1u << bank;
    cluster.rows = RowSet::allRows();
    cluster.cols = ColSet::allCols();
    return FaultRegion({cluster});
}

TEST(Classifier, NoOthersNoError)
{
    const ReliabilityClassifier classifier(geom(), ReliabilityParams{});
    const FaultRegion region = bitRegion(0, 1, 2, 0xff);
    const auto outcome = classifier.classify(3, region, {});
    EXPECT_FALSE(outcome.due);
    EXPECT_EQ(outcome.sdcExpectation, 0.0);
}

TEST(Classifier, SameDeviceNeverConflicts)
{
    const ReliabilityClassifier classifier(geom(), ReliabilityParams{});
    const FaultRegion a = bitRegion(0, 1, 2, 0xff);
    const FaultRegion b = bitRegion(0, 1, 2, 0xff);
    const auto outcome = classifier.classify(3, a, {{3, &b}});
    EXPECT_FALSE(outcome.due);
}

TEST(Classifier, OverlappingDevicesAreDue)
{
    ReliabilityParams params;
    const ReliabilityClassifier classifier(geom(), params);
    const FaultRegion a = bitRegion(0, 1, 2, 0x0f);
    const FaultRegion b = bitRegion(0, 1, 2, 0xf0);  // Same symbol 0.
    const auto outcome = classifier.classify(3, a, {{4, &b}});
    EXPECT_TRUE(outcome.due);
    EXPECT_NEAR(outcome.sdcExpectation, params.pairMiscorrectProb, 1e-12);
}

TEST(Classifier, DisjointSymbolsNoDue)
{
    const ReliabilityClassifier classifier(geom(), ReliabilityParams{});
    const FaultRegion a = bitRegion(0, 1, 2, 0x000000ff);
    const FaultRegion b = bitRegion(0, 1, 2, 0x0000ff00);
    const auto outcome = classifier.classify(3, a, {{4, &b}});
    EXPECT_FALSE(outcome.due);
}

TEST(Classifier, DifferentBankNoDue)
{
    const ReliabilityClassifier classifier(geom(), ReliabilityParams{});
    const FaultRegion a = bitRegion(0, 1, 2, 0xff);
    const FaultRegion b = bitRegion(1, 1, 2, 0xff);
    const auto outcome = classifier.classify(3, a, {{4, &b}});
    EXPECT_FALSE(outcome.due);
}

TEST(Classifier, TripleOverlapAddsSdc)
{
    ReliabilityParams params;
    const ReliabilityClassifier classifier(geom(), params);
    const FaultRegion incoming = bankRegion(2);
    const FaultRegion b = bitRegion(2, 100, 50, 0x1);
    const FaultRegion c = bitRegion(2, 100, 50, 0x2);  // Same symbol.
    const auto outcome =
        classifier.classify(1, incoming, {{4, &b}, {5, &c}});
    EXPECT_TRUE(outcome.due);
    EXPECT_NEAR(outcome.sdcExpectation,
                params.pairMiscorrectProb + params.tripleMiscorrectProb,
                1e-12);
}

TEST(Classifier, TripleNeedsThreeDistinctDevices)
{
    ReliabilityParams params;
    const ReliabilityClassifier classifier(geom(), params);
    const FaultRegion incoming = bankRegion(2);
    const FaultRegion b = bitRegion(2, 100, 50, 0x1);
    const FaultRegion c = bitRegion(2, 101, 50, 0x2);
    // Two faults on the SAME device: merged, no triple.
    const auto outcome =
        classifier.classify(1, incoming, {{4, &b}, {4, &c}});
    EXPECT_TRUE(outcome.due);
    EXPECT_NEAR(outcome.sdcExpectation, params.pairMiscorrectProb, 1e-12);
}

LifetimeConfig
smallConfig(double fit_scale = 1.0)
{
    LifetimeConfig config;
    config.nodesPerSystem = 1024;
    config.faultModel.fitScale = fit_scale;
    return config;
}

TEST(Lifetime, ZeroRatesZeroMetrics)
{
    LifetimeConfig config = smallConfig();
    config.faultModel.rates = FitRates{};  // All zero.
    config.faultModel.rates.permanentFit[0] = 1e-6;  // Nearly zero.
    const LifetimeSimulator simulator(config);
    Rng rng(1);
    const LifetimeMetrics metrics = simulator.runSystemTrial({}, rng);
    EXPECT_EQ(metrics.dues, 0.0);
    EXPECT_EQ(metrics.replacements, 0.0);
    EXPECT_EQ(metrics.faultyNodes, 0.0);
}

TEST(Lifetime, DeterministicAcrossRuns)
{
    const LifetimeSimulator simulator(smallConfig(10.0));
    Rng rng_a(7);
    Rng rng_b(7);
    const LifetimeMetrics a = simulator.runSystemTrial({}, rng_a);
    const LifetimeMetrics b = simulator.runSystemTrial({}, rng_b);
    EXPECT_EQ(a.dues, b.dues);
    EXPECT_EQ(a.sdcs, b.sdcs);
    EXPECT_EQ(a.replacements, b.replacements);
    EXPECT_EQ(a.permanentFaults, b.permanentFaults);
}

TEST(Lifetime, FaultyNodeCountMatchesModel)
{
    LifetimeConfig config = smallConfig();
    config.faultModel.accelerationEnabled = false;
    const LifetimeSimulator simulator(config);
    const LifetimeSummary summary = simulator.runTrials(32, {}, 99);
    const double lambda = 20e-9 * 144 * config.faultModel.missionHours;
    const double expected = 1024 * (1.0 - std::exp(-lambda));
    EXPECT_NEAR(summary.faultyNodes.mean(), expected,
                5 * summary.faultyNodes.stderror() + 2.0);
}

TEST(Lifetime, RepairReducesDues)
{
    LifetimeConfig config = smallConfig(10.0);
    const LifetimeSimulator simulator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};

    const LifetimeSummary no_repair = simulator.runTrials(32, {}, 4242);
    const LifetimeSummary repaired = simulator.runTrials(
        32,
        [&] {
            return std::make_unique<RelaxFaultRepair>(
                geometry, llc, RepairBudget{4, 32768}, true);
        },
        4242);
    EXPECT_GT(no_repair.dues.mean(), 0.0);
    EXPECT_LT(repaired.dues.mean(), no_repair.dues.mean());
    EXPECT_LT(repaired.sdcs.mean(), no_repair.sdcs.mean());
    EXPECT_GT(repaired.repairedFaults.mean(), 0.0);
    // The vast majority of permanent faults are repairable (Fig. 10).
    EXPECT_GT(repaired.repairedFaults.mean() /
                  repaired.permanentFaults.mean(),
              0.8);
}

TEST(Lifetime, ReplBFarMoreAggressiveThanReplA)
{
    LifetimeConfig repl_a = smallConfig();
    repl_a.policy = ReplacePolicy::AfterDue;
    LifetimeConfig repl_b = smallConfig();
    repl_b.policy = ReplacePolicy::OnFrequentErrors;

    const LifetimeSummary a =
        LifetimeSimulator(repl_a).runTrials(24, {}, 5);
    const LifetimeSummary b =
        LifetimeSimulator(repl_b).runTrials(24, {}, 5);
    // Paper: ReplB replaces ~350x more DIMMs than ReplA.
    EXPECT_GT(b.replacements.mean(), 20 * (a.replacements.mean() + 0.01));
    // ReplB replaces most DIMMs with unrepaired hard-permanent faults.
    EXPECT_GT(b.replacements.mean(),
              0.4 * b.permanentFaults.mean() * 0.9);
}

TEST(Lifetime, RepairAvoidsReplBReplacements)
{
    LifetimeConfig config = smallConfig();
    config.policy = ReplacePolicy::OnFrequentErrors;
    const LifetimeSimulator simulator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};

    const LifetimeSummary no_repair = simulator.runTrials(24, {}, 6);
    const LifetimeSummary repaired = simulator.runTrials(
        24,
        [&] {
            return std::make_unique<RelaxFaultRepair>(
                geometry, llc, RepairBudget{4, 32768}, true);
        },
        6);
    // Paper: ~87% of replacements avoided.
    EXPECT_LT(repaired.replacements.mean(),
              0.4 * no_repair.replacements.mean());
}

TEST(Lifetime, AcceleratedPopulationDrivesDues)
{
    LifetimeConfig with = smallConfig();
    LifetimeConfig without = smallConfig();
    without.faultModel.accelerationEnabled = false;
    const LifetimeSummary accel =
        LifetimeSimulator(with).runTrials(40, {}, 7);
    const LifetimeSummary uniform =
        LifetimeSimulator(without).runTrials(40, {}, 7);
    // The refined model predicts far more DUEs than the uniform model
    // (the paper's Sec. 4.1.2 argument).
    EXPECT_GT(accel.dues.mean(), 3 * (uniform.dues.mean() + 0.02));
    EXPECT_GT(accel.multiDeviceFaultDimms.mean(),
              uniform.multiDeviceFaultDimms.mean());
}

TEST(Lifetime, DueReductionWithinPaperConsistentBand)
{
    // Statistical golden test: at the calibrated dueBeforeRepairProb
    // (0.5), the RelaxFault-4way DUE reduction must stay in a CI band
    // consistent with the paper's anchors — 52% at 1x FIT and 37% at
    // 10x (this reproduction measures 41-53%; see EXPERIMENTS.md). The
    // run is fixed-seed and parallel-engine deterministic, so a drift
    // outside the band means the repair/classification semantics moved,
    // not that the dice fell badly.
    LifetimeConfig config = smallConfig(10.0);
    ASSERT_EQ(config.dueBeforeRepairProb, 0.5);
    const LifetimeSimulator simulator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};

    constexpr unsigned kTrials = 48;
    constexpr uint64_t kSeed = 160514;  // Re-baseline margins if changed.
    const LifetimeSummary no_repair =
        simulator.runTrials(kTrials, {}, kSeed);
    const LifetimeSummary repaired = simulator.runTrials(
        kTrials,
        [&] {
            return std::make_unique<RelaxFaultRepair>(
                geometry, llc, RepairBudget{4, 32768}, true);
        },
        kSeed);

    ASSERT_GT(no_repair.dues.mean(), 0.0);
    const double reduction =
        1.0 - repaired.dues.mean() / no_repair.dues.mean();
    // Delta-method 95% half-width of the ratio (independent runs).
    const double ratio = repaired.dues.mean() / no_repair.dues.mean();
    const double rel_var =
        std::pow(repaired.dues.stderror() / repaired.dues.mean(), 2) +
        std::pow(no_repair.dues.stderror() / no_repair.dues.mean(), 2);
    const double half_width = 1.96 * ratio * std::sqrt(rel_var);

    // The band [reduction +/- CI] must overlap the paper's 37-52%
    // bracket, and the point estimate must not stray outside 25-70%.
    EXPECT_GE(reduction + half_width, 0.37);
    EXPECT_LE(reduction - half_width, 0.52);
    EXPECT_GT(reduction, 0.25);
    EXPECT_LT(reduction, 0.70);
}

TEST(Lifetime, MetricArithmetic)
{
    LifetimeMetrics a;
    a.dues = 2;
    a.sdcs = 0.5;
    LifetimeMetrics b;
    b.dues = 4;
    b.sdcs = 1.5;
    a += b;
    EXPECT_EQ(a.dues, 6.0);
    a /= 2.0;
    EXPECT_EQ(a.dues, 3.0);
    EXPECT_EQ(a.sdcs, 1.0);
}

} // namespace
} // namespace relaxfault
