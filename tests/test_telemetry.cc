/**
 * @file
 * Unit and regression tests for the telemetry subsystem: sharded
 * counters and histograms, the JSON writer, run records, the component
 * publishers, and the thread-count-invariance contract of instrumented
 * simulation runs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "cache/cache_geometry.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/relaxfault_controller.h"
#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"
#include "telemetry/json_reader.h"
#include "telemetry/json_writer.h"
#include "telemetry/metrics.h"
#include "telemetry/run_record.h"

namespace relaxfault {
namespace {

TEST(Counter, CountsExactlyUnderParallelFor)
{
    MetricRegistry registry;
    Counter &counter = registry.counter("test.adds");
    for (const unsigned threads : {1u, 2u, 8u}) {
        counter.reset();
        ParallelConfig config;
        config.threads = threads;
        config.chunk = 7;
        parallelFor(
            10000,
            [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i)
                    counter.add(i % 3);
            },
            config);
        uint64_t expected = 0;
        for (size_t i = 0; i < 10000; ++i)
            expected += i % 3;
        EXPECT_EQ(counter.value(), expected) << threads;
    }
}

TEST(Gauge, SetAddAndReset)
{
    MetricRegistry registry;
    Gauge &gauge = registry.gauge("test.level");
    gauge.set(42);
    EXPECT_EQ(gauge.value(), 42);
    gauge.add(-50);
    EXPECT_EQ(gauge.value(), -8);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(~uint64_t{0}), 64u);
    // Every bucket covers [lowerBound, upperBound] inclusive.
    for (unsigned b = 1; b < Log2Histogram::kBuckets - 1; ++b) {
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketLowerBound(b)),
                  b);
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketUpperBound(b)),
                  b);
    }
}

TEST(Log2Histogram, RecordsAndSnapshots)
{
    MetricRegistry registry;
    Log2Histogram &hist = registry.histogram("test.latency");
    for (uint64_t v : {0ull, 1ull, 5ull, 5ull, 100ull})
        hist.record(v);
    const Log2HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 111u);
    EXPECT_DOUBLE_EQ(snap.mean(), 111.0 / 5.0);
    EXPECT_EQ(snap.buckets[0], 1u);                        // value 0
    EXPECT_EQ(snap.buckets[Log2Histogram::bucketOf(5)], 2u);
    // Median falls in the [4, 7] bucket => inclusive upper bound 7.
    EXPECT_EQ(snap.quantileUpperBound(0.5), 7u);
    EXPECT_EQ(snap.quantileUpperBound(1.0),
              Log2Histogram::bucketUpperBound(Log2Histogram::bucketOf(100)));
}

TEST(Log2Histogram, ShardedRecordsMergeExactly)
{
    MetricRegistry registry;
    Log2Histogram &hist = registry.histogram("test.sharded");
    Log2HistogramSnapshot serial{};
    for (const unsigned threads : {1u, 4u}) {
        hist.reset();
        ParallelConfig config;
        config.threads = threads;
        config.chunk = 13;
        parallelFor(
            5000,
            [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i)
                    hist.record(i * i % 1021);
            },
            config);
        if (threads == 1)
            serial = hist.snapshot();
        else
            EXPECT_TRUE(hist.snapshot() == serial);
    }
}

// ---------------------------------------------------------------------
// recordBatch is the SIMD-era bulk fill path; its contract is that the
// merged snapshot is bit-identical to per-sample record() for ANY input
// distribution at EVERY dispatch level. The adversarial distributions
// below aim at the bucket classifier's edges (0, max, powers of two)
// and at the sparse-vs-dense publish strategy (all-same vs all-spread).

/** Snapshot produced by the naive per-sample reference loop. */
Log2HistogramSnapshot
referenceFill(const std::vector<uint64_t> &values)
{
    Log2Histogram hist;
    for (const uint64_t value : values)
        hist.record(value);
    return hist.snapshot();
}

void
expectBatchMatchesReference(const std::vector<uint64_t> &values,
                            const char *label)
{
    const Log2HistogramSnapshot expected = referenceFill(values);
    for (const SimdLevel level : supportedSimdLevels()) {
        ScopedSimdLevel scoped(level);
        Log2Histogram hist;
        hist.recordBatch(values.data(), values.size());
        EXPECT_TRUE(hist.snapshot() == expected)
            << label << " at level " << simdLevelName(level);
    }
}

TEST(Log2HistogramBatch, AdversarialDistributionsMatchNaiveLoop)
{
    expectBatchMatchesReference({}, "empty");
    expectBatchMatchesReference(std::vector<uint64_t>(1000, 0), "all-zero");
    expectBatchMatchesReference(
        std::vector<uint64_t>(1000, ~uint64_t{0}), "all-max");

    // Every power-of-two edge: 2^k - 1, 2^k, 2^k + 1 for k = 0..63.
    // These straddle bucket boundaries, where a vectorized classifier
    // would be most likely to be off by one.
    std::vector<uint64_t> edges;
    for (unsigned k = 0; k < 64; ++k) {
        const uint64_t pow2 = uint64_t{1} << k;
        edges.push_back(pow2 - 1);
        edges.push_back(pow2);
        edges.push_back(pow2 + 1);
    }
    expectBatchMatchesReference(edges, "power-of-two-edges");

    // Single-bucket spike (sparse publish: one occupied bucket) and a
    // full 64-bit spread (dense publish: most buckets occupied).
    expectBatchMatchesReference(std::vector<uint64_t>(777, 42), "spike");
    Rng rng(51);
    std::vector<uint64_t> spread;
    for (int i = 0; i < 4096; ++i)
        spread.push_back(rng.next() >> rng.uniformInt(64));
    expectBatchMatchesReference(spread, "random-spread");
}

TEST(Log2HistogramBatch, SumOverflowWrapsIdentically)
{
    // Two max values overflow the uint64 sum; the wrapped result must
    // be the same wrapped result the per-sample loop produces.
    expectBatchMatchesReference(
        {~uint64_t{0}, ~uint64_t{0}, 5}, "sum-overflow");
}

TEST(HistogramBatch, StagesAndFlushesThroughRecordBatch)
{
    MetricRegistry registry;
    Log2Histogram &hist = registry.histogram("test.batched");
    const size_t total = HistogramBatch::kCapacity * 2 + 17;
    Log2Histogram reference;
    {
        HistogramBatch batch(&hist);
        EXPECT_TRUE(batch.enabled());
        for (size_t i = 0; i < total; ++i) {
            batch.record(i * 37);
            reference.record(i * 37);
        }
        // Everything before the last partial buffer is already visible.
        EXPECT_GE(hist.snapshot().count, HistogramBatch::kCapacity * 2);
    }  // Destructor flushes the tail.
    EXPECT_TRUE(hist.snapshot() == reference.snapshot());
}

TEST(HistogramBatch, NullSinkIsDisabledAndFree)
{
    HistogramBatch batch(nullptr);
    EXPECT_FALSE(batch.enabled());
    for (int i = 0; i < 10000; ++i)
        batch.record(i);  // Must not touch the (absent) staging buffer.
    { ScopedTimer timer(&batch); }  // Disabled batch disables the timer.
}

TEST(ScopedTimer, RecordsThroughHistogramBatch)
{
    MetricRegistry registry;
    Log2Histogram &hist = registry.histogram("test.timer_batch");
    {
        HistogramBatch batch(&hist);
        { ScopedTimer timer(&batch); }
        { ScopedTimer timer(&batch); }
    }
    EXPECT_EQ(hist.snapshot().count, 2u);
}

TEST(MetricRegistry, LookupIsStableAndIdempotent)
{
    MetricRegistry registry;
    Counter &a = registry.counter("same.name");
    Counter &b = registry.counter("same.name");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
    // Counters, gauges, and histograms live in separate namespaces.
    registry.gauge("same.name").set(7);
    EXPECT_EQ(registry.counter("same.name").value(), 3u);
}

TEST(MetricRegistry, SnapshotIsSortedAndComparable)
{
    MetricRegistry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("z.gauge").set(-5);
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "a.first");
    EXPECT_EQ(snap.counters[1].first, "b.second");
    EXPECT_TRUE(snap == registry.snapshot());
    registry.counter("a.first").add(1);
    EXPECT_FALSE(snap == registry.snapshot());
}

TEST(ScopedTimer, NullSinkRecordsNothing)
{
    { ScopedTimer timer(nullptr); }  // Must not crash.
    MetricRegistry registry;
    Log2Histogram &hist = registry.histogram("test.timer");
    { ScopedTimer timer(&hist); }
    EXPECT_EQ(hist.snapshot().count, 1u);
}

TEST(JsonWriter, EscapesAndNests)
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("text").value("a\"b\\c\n\tx")
        .key("nested").beginObject()
            .key("n").value(int64_t{-3})
            .key("u").value(uint64_t{18446744073709551615ull})
        .endObject()
        .key("list").beginArray()
            .value(1.5).value(true).nullValue()
        .endArray()
        .endObject();
    writer.finish();
    EXPECT_EQ(os.str(),
              "{\"text\":\"a\\\"b\\\\c\\n\\tx\","
              "\"nested\":{\"n\":-3,\"u\":18446744073709551615},"
              "\"list\":[1.5,true,null]}");
}

TEST(JsonWriter, ControlCharactersAndNonFinite)
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("ctl").value(std::string("\x01\x1f"))
        .key("inf").value(1.0 / 0.0)
        .endObject();
    writer.finish();
    EXPECT_EQ(os.str(), "{\"ctl\":\"\\u0001\\u001f\",\"inf\":null}");
}

// ---------------------------------------------------------------------
// Writer -> parser round trips. The campaign checkpoint depends on two
// exactness guarantees: %.17g doubles reparse bit-identically, and
// integers beyond 2^53 keep their exact value (never pass through a
// double). Control characters below 0x20 must round-trip through the
// \uXXXX escapes the writer emits.

std::string
writeOneString(const std::string &text)
{
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject().key("s").value(text).endObject();
    writer.finish();
    return os.str();
}

TEST(JsonRoundTrip, AllControlCharactersSurvive)
{
    // Every byte below 0x20, plus the two specially-escaped ones.
    std::string text;
    for (char c = 1; c < 0x20; ++c)
        text.push_back(c);
    text += "\"\\ plain";
    const std::string doc = writeOneString(text);
    // The wire form must not contain any raw control byte.
    for (const char c : doc)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    const JsonParseResult parsed = parseJson(doc);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue *value = parsed.value.find("s");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->string(), text);
}

TEST(JsonRoundTrip, DoublesAreBitExact)
{
    const double cases[] = {0.0,
                            1.5,
                            -1.0 / 3.0,
                            1e-308,          // Near-subnormal.
                            1.7976931348623157e308,
                            0.1,             // Not exact in binary.
                            3.141592653589793,
                            5e-324};         // Smallest subnormal.
    for (const double expected : cases) {
        std::ostringstream os;
        JsonWriter writer(os);
        writer.beginObject().key("d").value(expected).endObject();
        writer.finish();
        const JsonParseResult parsed = parseJson(os.str());
        ASSERT_TRUE(parsed.ok) << parsed.error;
        const double actual = parsed.value.find("d")->number();
        uint64_t expected_bits = 0;
        uint64_t actual_bits = 0;
        std::memcpy(&expected_bits, &expected, sizeof expected);
        std::memcpy(&actual_bits, &actual, sizeof actual);
        EXPECT_EQ(actual_bits, expected_bits) << expected;
    }
}

TEST(JsonRoundTrip, IntegersBeyondDoublePrecisionExact)
{
    const uint64_t big = (uint64_t{1} << 60) + 1;  // Rounds as double.
    std::ostringstream os;
    JsonWriter writer(os);
    writer.beginObject()
        .key("u").value(big)
        .key("n").value(int64_t{-9007199254740993ll})
        .endObject();
    writer.finish();
    const JsonParseResult parsed = parseJson(os.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.find("u")->asUint(), big);
    EXPECT_EQ(parsed.value.find("n")->asInt(), -9007199254740993ll);
}

TEST(JsonParser, RejectsTornDocuments)
{
    // A torn checkpoint line is a prefix of a valid document, or two
    // lines glued together; neither may parse.
    const std::string doc =
        R"({"schema":"relaxfault.ckpt.v2","trials":[1.5,2.5],"n":3})";
    ASSERT_TRUE(parseJson(doc).ok);
    for (size_t len = 0; len < doc.size(); ++len)
        EXPECT_FALSE(parseJson(doc.substr(0, len)).ok)
            << "prefix length " << len;
    EXPECT_FALSE(parseJson(doc + "{\"next\":").ok);
    EXPECT_FALSE(parseJson(doc + doc).ok);
    EXPECT_FALSE(parseJson("{\"a\":01}").ok);     // Leading zero.
    EXPECT_FALSE(parseJson("{\"a\":+1}").ok);     // Stray sign.
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok);      // Missing colon.
    EXPECT_FALSE(parseJson("{\"a\":1,}").ok);     // Trailing comma.
}

TEST(JsonParser, ParsesEscapesAndStructure)
{
    const JsonParseResult parsed = parseJson(
        "  {\"t\":\"a\\u0041\\n\\\"\",\"arr\":[null,true,false,-2]} ");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.find("t")->string(), "aA\n\"");
    const auto &array = parsed.value.find("arr")->array();
    ASSERT_EQ(array.size(), 4u);
    EXPECT_TRUE(array[0].isNull());
    EXPECT_TRUE(array[1].boolean());
    EXPECT_FALSE(array[2].boolean());
    EXPECT_EQ(array[3].asInt(), -2);
}

TEST(RunRecord, EmitsSchemaCompleteLine)
{
    RunRecord record("unit_test_bench");
    record.setSeed(7).setTrials(3).setThreads(2);
    record.setConfig("nodes", int64_t{64});
    record.addRow().set("mechanism", "none").set("value", 1.5);
    MetricRegistry registry;
    registry.counter("sim.trials").add(3);
    registry.histogram("sim.trial_us").record(100);

    std::ostringstream os;
    record.writeJsonLine(os, &registry);
    const std::string line = os.str();
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    for (const char *needle :
         {"\"schema\":\"relaxfault.bench.v1\"",
          "\"bench\":\"unit_test_bench\"", "\"git_rev\":",
          "\"timestamp_ms\":", "\"seed\":7", "\"trials\":3",
          "\"threads\":2", "\"nodes\":64", "\"mechanism\":\"none\"",
          "\"sim.trials\":3", "\"sim.trial_us\""}) {
        EXPECT_NE(line.find(needle), std::string::npos) << needle;
    }
}

TEST(RunRecord, GitRevEnvOverride)
{
    setenv("RELAXFAULT_GIT_REV", "cafef00d", 1);
    EXPECT_EQ(runGitRev(), "cafef00d");
    unsetenv("RELAXFAULT_GIT_REV");
    EXPECT_FALSE(runGitRev().empty());
}

TEST(Publish, RepairMechanismOccupancy)
{
    const DramGeometry geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    RelaxFaultRepair repair(geometry, llc, RepairBudget{4, 32768}, true);
    FaultRecord fault;
    fault.persistence = Persistence::Permanent;
    RegionCluster cluster;
    cluster.bankMask = 1;
    cluster.rows = RowSet::of({100});
    cluster.cols = ColSet::allCols();
    fault.parts.push_back({0, 3, FaultRegion({cluster})});
    ASSERT_TRUE(repair.tryRepair(fault));

    MetricRegistry registry;
    repair.publishTelemetry(registry);
    const auto used =
        registry.histogram("repair.RelaxFault.used_lines").snapshot();
    EXPECT_EQ(used.count, 1u);
    EXPECT_EQ(used.sum, repair.usedLines());
    EXPECT_GE(registry.histogram("repair.RelaxFault.locked_ways_per_set")
                  .snapshot()
                  .count,
              1u);
    EXPECT_EQ(registry.histogram("repair.RelaxFault.flagged_banks")
                  .snapshot()
                  .sum,
              1u);
}

TEST(Publish, ControllerGauges)
{
    ControllerConfig config;
    RelaxFaultController controller(config);
    uint8_t data[64] = {1};
    const uint64_t pa = 0;
    controller.write(pa, data);
    uint8_t out[64];
    controller.read(pa, out);

    MetricRegistry registry;
    controller.publishTelemetry(registry);
    EXPECT_EQ(registry.gauge("controller.reads").value(), 1);
    EXPECT_EQ(registry.gauge("controller.writes").value(), 1);
    EXPECT_EQ(registry.gauge("controller.faults_reported").value(), 0);
}

TEST(Lifetime, CountersBitIdenticalAcrossThreadCounts)
{
    // The tentpole regression: an instrumented Monte Carlo run produces
    // bit-identical telemetry counters at any thread count, composing
    // with the deterministic parallel engine.
    LifetimeConfig config;
    config.nodesPerSystem = 96;
    const LifetimeSimulator simulator(config);
    const DramGeometry geometry = config.faultModel.geometry;
    const CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    const LifetimeSimulator::MechanismFactory factory = [&] {
        return std::make_unique<RelaxFaultRepair>(
            geometry, llc, RepairBudget{1, 32768}, true);
    };

    MetricsSnapshot baseline;
    for (const unsigned threads : {1u, 2u, 8u}) {
        MetricRegistry registry;
        TrialRunOptions run;
        run.parallel.threads = threads;
        run.metrics = &registry;
        simulator.runTrials(4, factory, 1206, run);

        EXPECT_EQ(registry.counter("sim.trials").value(), 4u);
        MetricsSnapshot snap = registry.snapshot();
        // Wall-clock latencies are execution-dependent by design; the
        // contract covers the outcome metrics.
        std::erase_if(snap.histograms, [](const auto &entry) {
            return entry.first == "sim.trial_us";
        });
        if (threads == 1) {
            baseline = snap;
            EXPECT_GT(registry.counter("sim.faulty_nodes").value(), 0u);
        } else {
            EXPECT_TRUE(snap == baseline) << threads;
        }
    }
}

TEST(Lifetime, NullRegistryProducesSameSummary)
{
    // Telemetry is observational: enabling it must not change results.
    LifetimeConfig config;
    config.nodesPerSystem = 64;
    const LifetimeSimulator simulator(config);

    TrialRunOptions plain;
    const LifetimeSummary without =
        simulator.runTrials(3, {}, 99, plain);
    MetricRegistry registry;
    TrialRunOptions instrumented;
    instrumented.metrics = &registry;
    const LifetimeSummary with =
        simulator.runTrials(3, {}, 99, instrumented);
    EXPECT_EQ(without.dues.sum(), with.dues.sum());
    EXPECT_EQ(without.sdcs.sum(), with.sdcs.sum());
    EXPECT_EQ(without.faultyNodes.sum(), with.faultyNodes.sum());
}

} // namespace
} // namespace relaxfault
