/**
 * @file
 * Tests for trace recording/replay, the AccessStream abstraction, and
 * DRAM refresh timing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "perf/dram_channel.h"
#include "perf/perf_sim.h"
#include "perf/trace.h"
#include "perf/workload.h"

namespace relaxfault {
namespace {

TEST(Trace, WriteReadRoundTrip)
{
    std::ostringstream os;
    TraceWriter writer(os);
    SyntheticWorkload workload(WorkloadParams::preset("milc"), 1 << 30,
                               7);
    std::vector<MemAccess> original;
    for (int i = 0; i < 500; ++i) {
        const MemAccess access = workload.next();
        writer.record(access);
        original.push_back(access);
    }
    EXPECT_EQ(writer.recordCount(), 500u);

    std::istringstream is(os.str());
    uint64_t malformed = 0;
    const std::vector<MemAccess> replayed =
        TraceReader::readAll(is, &malformed);
    EXPECT_EQ(malformed, 0u);
    ASSERT_EQ(replayed.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(replayed[i].pa, original[i].pa);
        EXPECT_EQ(replayed[i].write, original[i].write);
        EXPECT_EQ(replayed[i].gapInstructions,
                  original[i].gapInstructions);
    }
}

TEST(Trace, MalformedLinesSkippedAndCounted)
{
    std::istringstream is("R 1000 3\n# comment\nbogus line\nX 20 1\n"
                          "W 2000 5\n\n");
    uint64_t malformed = 0;
    const auto accesses = TraceReader::readAll(is, &malformed);
    ASSERT_EQ(accesses.size(), 2u);
    EXPECT_EQ(malformed, 2u);
    EXPECT_EQ(accesses[0].pa, 0x1000u);
    EXPECT_FALSE(accesses[0].write);
    EXPECT_EQ(accesses[1].pa, 0x2000u);
    EXPECT_TRUE(accesses[1].write);
    EXPECT_EQ(accesses[1].gapInstructions, 5u);
}

TEST(Trace, WorkloadLoops)
{
    std::vector<MemAccess> accesses = {{64, false, 1}, {128, true, 2}};
    TraceWorkload workload(accesses, 2.0, "loop");
    EXPECT_EQ(workload.next().pa, 64u);
    EXPECT_EQ(workload.next().pa, 128u);
    EXPECT_EQ(workload.next().pa, 64u);  // Wrapped.
    EXPECT_EQ(workload.length(), 2u);
    EXPECT_EQ(workload.mlpFactor(), 2.0);
    EXPECT_EQ(workload.name(), "loop");
}

TEST(Trace, ReplayThroughSimulatorMatchesLiveRun)
{
    // Record a synthetic stream, then replay it: the cache/DRAM path
    // must see identical behaviour (same misses and DRAM ops).
    PerfConfig config;
    config.instructionsPerCore = 30000;
    config.warmupAccessesPerCore = 1000;
    const PerfSimulator simulator(config);

    const WorkloadParams params = WorkloadParams::preset("soplex");
    const uint64_t region =
        PerfConfig::dramGeometry().nodeBytes() / config.cores;

    // Live run with one core.
    std::vector<std::unique_ptr<AccessStream>> live(1);
    Rng seeder(77);
    const uint64_t stream_seed = seeder.next();
    live[0] =
        std::make_unique<SyntheticWorkload>(params, 0 * region,
                                            stream_seed);
    const PerfResult live_result =
        simulator.runStreams(std::move(live), LlcRepairConfig::none());

    // Record the same stream (same seed) to a trace, then replay.
    std::ostringstream os;
    TraceWriter writer(os);
    SyntheticWorkload recorder(params, 0 * region, stream_seed);
    for (int i = 0; i < 300000; ++i)
        writer.record(recorder.next());
    std::istringstream is(os.str());
    std::vector<std::unique_ptr<AccessStream>> replay(1);
    replay[0] = std::make_unique<TraceWorkload>(
        TraceReader::readAll(is), params.mlpFactor, params.name);
    const PerfResult replay_result =
        simulator.runStreams(std::move(replay), LlcRepairConfig::none());

    EXPECT_EQ(replay_result.llcMisses, live_result.llcMisses);
    EXPECT_EQ(replay_result.dram.reads, live_result.dram.reads);
    EXPECT_EQ(replay_result.cores[0].cycles, live_result.cores[0].cycles);
}

TEST(Refresh, PeriodicRefreshBlocksBank)
{
    const DramGeometry geometry = PerfConfig::dramGeometry();
    const DramTiming timing;
    DramChannelTiming channel(geometry, timing, 5);
    const uint64_t interval = uint64_t{timing.tREFI} * 5;

    // An access just after a refresh boundary waits for tRFC.
    const uint64_t request = interval + 1;
    const uint64_t done = channel.access(0, 0, 100, false, request);
    EXPECT_GE(done, interval + uint64_t{timing.tRFC} * 5);
    EXPECT_GE(channel.refreshesIssued(), 1u);

    // Refresh closed the row: the next access to the same row after
    // the *next* boundary is not a row hit.
    const uint64_t request2 = 2 * interval + 1;
    const uint64_t done2 = channel.access(0, 0, 100, false, request2);
    const uint64_t latency2 = done2 - (2 * interval +
                                       uint64_t{timing.tRFC} * 5);
    EXPECT_GE(latency2, uint64_t{timing.rowMissLatency()} * 5 - 1);
}

TEST(Refresh, DisabledMeansNoBlocking)
{
    const DramGeometry geometry = PerfConfig::dramGeometry();
    const DramTiming timing;
    DramChannelTiming channel(geometry, timing, 5);
    channel.setRefreshEnabled(false);
    const uint64_t interval = uint64_t{timing.tREFI} * 5;
    const uint64_t done = channel.access(0, 0, 100, false, interval + 1);
    EXPECT_EQ(done, interval + 1 + uint64_t{timing.rowMissLatency()} * 5);
    EXPECT_EQ(channel.refreshesIssued(), 0u);
}

} // namespace
} // namespace relaxfault
