/**
 * @file
 * Causal-tracing tests: the tracer is invisible (a traced lifetime run
 * is bit-identical to an untraced one at any thread count, and the
 * disabled path costs under a nanosecond per would-be event), the event
 * stream is deterministic and causally well-formed (every repair
 * decision chains under a fault arrival), the Chrome-trace export
 * round-trips bit-exactly — including 10k+-event documents, with torn
 * tails rejected — and the campaign runner's per-shard flushes agree
 * with the absorbed aggregate across crash/resume.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "campaign_flags.h"
#include "campaign/campaign.h"
#include "repair/relaxfault_repair.h"
#include "sim/lifetime.h"
#include "telemetry/json_reader.h"
#include "telemetry/json_writer.h"
#include "tracing/trace_event.h"
#include "tracing/trace_export.h"
#include "tracing/tracer.h"

namespace relaxfault {
namespace {

LifetimeConfig
smallConfig()
{
    LifetimeConfig config;
    config.nodesPerSystem = 64;
    config.faultModel.fitScale = 20.0;
    return config;
}

LifetimeSimulator::MechanismFactory
tightBudgetFactory()
{
    // A deliberately small budget so repairs fail and degradations /
    // verdicts appear in the trace.
    return []() -> std::unique_ptr<RepairMechanism> {
        return std::make_unique<RelaxFaultRepair>(
            DramGeometry{}, CacheGeometry{8 * 1024 * 1024, 16, 64},
            RepairBudget{1, 64});
    };
}

/** All-fields view for exact event comparison. */
auto
eventTuple(const TraceEvent &e)
{
    return std::tuple(e.id, e.parent, e.trial, e.node, e.unit, e.kind,
                      e.sub, e.timeHours, e.a, e.b, e.c);
}

std::vector<TraceEvent>
withoutKind(const std::vector<TraceEvent> &events, TraceKind kind)
{
    std::vector<TraceEvent> kept;
    for (const TraceEvent &e : events) {
        if (e.kind != kind)
            kept.push_back(e);
    }
    return kept;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "relaxfault_tracing_" + name + "_" +
           std::to_string(::getpid());
}

// ---------------------------------------------------------------------
// The tracer is invisible: traced == untraced, bit for bit.

TEST(TracingIdentity, TracedRunIsBitIdenticalToUntraced)
{
    const LifetimeSimulator simulator(smallConfig());
    const auto factory = tightBudgetFactory();
    constexpr unsigned kTrials = 6;
    constexpr uint64_t kSeed = 2024;

    TrialRunOptions off;
    off.parallel.threads = 1;
    const LifetimeSummary baseline =
        simulator.runTrials(kTrials, factory, kSeed, off);

    for (const unsigned threads : {1u, 4u}) {
        Tracer tracer;
        TrialRunOptions on;
        on.parallel.threads = threads;
        on.tracer = &tracer;
        on.traceUnit = tracer.registerUnit("identity");
        const LifetimeSummary traced =
            simulator.runTrials(kTrials, factory, kSeed, on);

        // Every statistic identical — the tracer consumed no RNG and
        // touched no simulation state.
        EXPECT_EQ(traced.dues.mean(), baseline.dues.mean());
        EXPECT_EQ(traced.dues.variance(), baseline.dues.variance());
        EXPECT_EQ(traced.sdcs.mean(), baseline.sdcs.mean());
        EXPECT_EQ(traced.replacements.sum(), baseline.replacements.sum());
        EXPECT_EQ(traced.repairedFaults.sum(),
                  baseline.repairedFaults.sum());
        EXPECT_EQ(traced.permanentFaults.sum(),
                  baseline.permanentFaults.sum());
        EXPECT_EQ(traced.fullyRepairedNodes.sum(),
                  baseline.fullyRepairedNodes.sum());
        EXPECT_EQ(traced.faultyNodes.sum(), baseline.faultyNodes.sum());
        EXPECT_GT(tracer.recorded(), 0u);
    }
}

TEST(TracingIdentity, EventStreamIdenticalAcrossThreadCounts)
{
    const LifetimeSimulator simulator(smallConfig());
    const auto factory = tightBudgetFactory();
    // Spans carry wall-clock durations, the one nondeterministic
    // payload; filter them so the full streams must match exactly.
    TracerConfig config;
    config.filter = kTraceAllKinds & ~traceKindBit(TraceKind::Span);

    std::vector<std::vector<TraceEvent>> streams;
    for (const unsigned threads : {1u, 4u}) {
        Tracer tracer(config);
        TrialRunOptions run;
        run.parallel.threads = threads;
        run.tracer = &tracer;
        run.traceUnit = tracer.registerUnit("determinism");
        simulator.runTrials(6, factory, 77, run);
        streams.push_back(tracer.collect());
    }
    ASSERT_EQ(streams[0].size(), streams[1].size());
    ASSERT_GT(streams[0].size(), 0u);
    for (size_t i = 0; i < streams[0].size(); ++i)
        EXPECT_EQ(eventTuple(streams[0][i]), eventTuple(streams[1][i]))
            << "event " << i;
}

// ---------------------------------------------------------------------
// Causal structure: decisions chain under arrivals.

TEST(TracingCausality, ChainsRunFaultToDecisionToOutcome)
{
    const LifetimeSimulator simulator(smallConfig());
    const auto factory = tightBudgetFactory();
    Tracer tracer;
    TrialRunOptions run;
    run.parallel.threads = 2;
    run.tracer = &tracer;
    run.traceUnit = tracer.registerUnit("causality");
    const LifetimeSummary summary =
        simulator.runTrials(8, factory, 4242, run);

    const std::vector<TraceEvent> events = tracer.collect();
    std::map<std::pair<uint64_t, uint64_t>, const TraceEvent *> by_id;
    for (const TraceEvent &e : events)
        by_id[{e.trial, e.id}] = &e;

    const auto kindOf = [&](const TraceEvent &e,
                            uint64_t parent) -> const TraceEvent * {
        const auto it = by_id.find({e.trial, parent});
        return it == by_id.end() ? nullptr : it->second;
    };

    uint64_t arrivals = 0, decisions = 0, degrades = 0, verdicts = 0;
    for (const TraceEvent &e : events) {
        // Parents precede their children within a trial's sequence.
        if (e.parent != 0) {
            const TraceEvent *parent = kindOf(e, e.parent);
            ASSERT_NE(parent, nullptr)
                << "dangling parent for id " << e.id;
            EXPECT_LT(parent->id, e.id);
        }
        switch (e.kind) {
          case TraceKind::FaultArrival:
            ++arrivals;
            break;
          case TraceKind::RepairDecision: {
            ++decisions;
            // Every decision chains under the arrival it answers.
            const TraceEvent *parent = kindOf(e, e.parent);
            ASSERT_NE(parent, nullptr);
            EXPECT_TRUE(parent->kind == TraceKind::FaultArrival ||
                        parent->kind == TraceKind::Replacement)
                << "decision parented by "
                << traceKindName(parent->kind);
            break;
          }
          case TraceKind::Degradation: {
            ++degrades;
            // Walk to the root: a degradation must trace back to the
            // fault that caused it.
            const TraceEvent *cursor = &e;
            while (cursor->parent != 0) {
                const TraceEvent *next = kindOf(*cursor, cursor->parent);
                ASSERT_NE(next, nullptr);
                cursor = next;
            }
            EXPECT_EQ(cursor->kind, TraceKind::FaultArrival);
            break;
          }
          case TraceKind::Verdict:
            ++verdicts;
            break;
          default:
            break;
        }
    }
    EXPECT_GT(arrivals, 0u);
    EXPECT_GT(decisions, 0u);
    // The tight budget forces failures, so the full fault -> decision
    // -> degradation -> verdict story is present in this trace.
    EXPECT_GT(degrades, 0u);
    if (summary.dues.sum() > 0.0) {
        EXPECT_GT(verdicts, 0u);
    }
}

// ---------------------------------------------------------------------
// Export round-trip.

/** Synthetic tracer with > 10k events across units and trials. */
std::unique_ptr<Tracer>
bigTracer(size_t per_trial = 900)
{
    auto tracer = std::make_unique<Tracer>();
    for (const char *label : {"alpha", "beta/4way", "gamma x"}) {
        const uint16_t unit = tracer->registerUnit(label);
        const TraceShardLease lease(tracer.get());
        TraceSink sink(tracer.get(), lease.shard(), unit);
        for (uint64_t trial = 0; trial < 4; ++trial) {
            sink.beginTrial(trial);
            for (size_t i = 0; i < per_trial; ++i) {
                sink.setNode(static_cast<uint32_t>(i % 37));
                sink.setSimTime(0.125 * static_cast<double>(i));
                const auto kind =
                    static_cast<TraceKind>(i % kTraceKindCount);
                const uint64_t id = sink.emit(
                    kind, static_cast<uint8_t>(i % 3),
                    i == 0 ? ~uint64_t{0} : i, i * 3, i * 7);
                if (i % 5 == 0)
                    sink.pushParent(id);
                if (i % 11 == 0)
                    sink.popParent(id);
            }
        }
    }
    return tracer;
}

TEST(TraceExport, TenThousandEventDocumentRoundTripsBitExactly)
{
    const std::unique_ptr<Tracer> tracer = bigTracer();
    const std::vector<TraceEvent> original = tracer->collect();
    ASSERT_GT(original.size(), 10000u);

    const std::string text = chromeTraceText(*tracer);

    // The document is valid trace-event JSON end to end.
    const JsonParseResult parsed = parseJson(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue *trace_events = parsed.value.find("traceEvents");
    ASSERT_NE(trace_events, nullptr);
    ASSERT_TRUE(trace_events->isArray());
    EXPECT_GT(trace_events->array().size(), original.size());

    LoadedTrace loaded;
    std::string error;
    ASSERT_TRUE(loadChromeTrace(text, loaded, &error)) << error;
    EXPECT_EQ(loaded.units,
              (std::vector<std::string>{"alpha", "beta/4way", "gamma x"}));
    EXPECT_EQ(loaded.droppedEvents, 0u);
    ASSERT_EQ(loaded.events.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i)
        ASSERT_EQ(eventTuple(loaded.events[i]), eventTuple(original[i]))
            << "event " << i;
}

TEST(TraceExport, TornTailsAndWrongSchemasAreRejected)
{
    const std::unique_ptr<Tracer> tracer = bigTracer(100);
    const std::string text = chromeTraceText(*tracer);

    // Truncate relative to the last non-whitespace byte: the document
    // may end in a newline, and chopping only that is not a tear.
    const size_t body = text.find_last_not_of(" \t\r\n") + 1;
    LoadedTrace loaded;
    for (const size_t keep :
         {size_t{0}, body / 4, body / 2, body * 9 / 10, body - 1}) {
        std::string error;
        EXPECT_FALSE(
            loadChromeTrace(text.substr(0, keep), loaded, &error))
            << "accepted a " << keep << "-byte torn prefix";
        EXPECT_FALSE(error.empty());
    }

    std::string wrong_schema = text;
    const size_t at = wrong_schema.find(kTraceSchema);
    ASSERT_NE(at, std::string::npos);
    wrong_schema[at + 1] = 'x';
    std::string error;
    EXPECT_FALSE(loadChromeTrace(wrong_schema, loaded, &error));
    EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(TraceExport, RingOverwriteDropsAreCountedAndExported)
{
    TracerConfig config;
    config.shardCapacity = 16;
    Tracer tracer(config);
    const uint16_t unit = tracer.registerUnit("ring");
    {
        const TraceShardLease lease(&tracer);
        TraceSink sink(&tracer, lease.shard(), unit);
        sink.beginTrial(0);
        for (unsigned i = 0; i < 100; ++i)
            sink.emit(TraceKind::FaultArrival, kFaultSampled, i);
    }
    EXPECT_EQ(tracer.recorded(), 100u);
    EXPECT_EQ(tracer.dropped(), 84u);
    const std::vector<TraceEvent> kept = tracer.collect();
    ASSERT_EQ(kept.size(), 16u);
    // Oldest-first overwrite: the survivors are the newest 16.
    EXPECT_EQ(kept.front().a, 84u);
    EXPECT_EQ(kept.back().a, 99u);

    LoadedTrace loaded;
    ASSERT_TRUE(loadChromeTrace(chromeTraceText(tracer), loaded));
    EXPECT_EQ(loaded.droppedEvents, 84u);
    EXPECT_EQ(loaded.events.size(), 16u);
}

TEST(TraceExport, AbsorbRemapsUnitsByLabel)
{
    Tracer aggregate;
    const uint16_t a_x = aggregate.registerUnit("x");
    const uint16_t a_y = aggregate.registerUnit("y");
    (void)a_x;

    Tracer shard;
    const uint16_t s_y = shard.registerUnit("y");  // id 0 here, 1 there.
    EXPECT_EQ(s_y, 0u);
    {
        const TraceShardLease lease(&shard);
        TraceSink sink(&shard, lease.shard(), s_y);
        sink.beginTrial(3);
        sink.emit(TraceKind::Verdict, kVerdictDue, 0, 2);
    }
    aggregate.absorb(shard);
    const std::vector<TraceEvent> events = aggregate.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].unit, a_y);
    EXPECT_EQ(aggregate.unitLabels(),
              (std::vector<std::string>{"x", "y"}));
}

// ---------------------------------------------------------------------
// JSON layer (satellite): deep nesting and huge arrays-of-objects.

TEST(JsonRoundTrip, DeeplyNestedArraysOfObjects)
{
    // The trace-event shape taken to depth 12:
    // {"v":k,"child":[{...}]} all the way down.
    constexpr int kDepth = 12;
    std::ostringstream out;
    JsonWriter writer(out);
    for (int level = 0; level < kDepth; ++level) {
        writer.beginObject().key("v").value(int64_t{level});
        writer.key("child").beginArray();
    }
    writer.beginObject().key("leaf").value(true).endObject();
    for (int level = 0; level < kDepth; ++level)
        writer.endArray().endObject();
    writer.finish();

    const JsonParseResult parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue *cursor = &parsed.value;
    for (int level = 0; level < kDepth; ++level) {
        const JsonValue *v = cursor->find("v");
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v->asInt(), level);
        const JsonValue *child = cursor->find("child");
        ASSERT_NE(child, nullptr);
        ASSERT_TRUE(child->isArray());
        ASSERT_EQ(child->array().size(), 1u);
        cursor = &child->array()[0];
    }
    const JsonValue *leaf = cursor->find("leaf");
    ASSERT_NE(leaf, nullptr);
    EXPECT_TRUE(leaf->boolean());
}

TEST(JsonRoundTrip, TenThousandObjectArrayAndTornTail)
{
    std::ostringstream out;
    JsonWriter writer(out);
    writer.beginObject().key("rows").beginArray();
    for (uint64_t i = 0; i < 10000; ++i) {
        writer.beginObject()
            .key("i").value(i)
            .key("s").value("row-" + std::to_string(i))
            .endObject();
    }
    writer.endArray().endObject();
    writer.finish();
    const std::string text = out.str();

    const JsonParseResult parsed = parseJson(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue *rows = parsed.value.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->array().size(), 10000u);
    EXPECT_EQ(rows->array()[9999].find("i")->asUint(), 9999u);
    EXPECT_EQ(rows->array()[1234].find("s")->string(), "row-1234");

    EXPECT_FALSE(parseJson(text.substr(0, text.size() / 2)).ok);
    EXPECT_FALSE(parseJson(text.substr(0, text.size() - 2)).ok);
}

// ---------------------------------------------------------------------
// Campaign integration: shard flushes, aggregate, resume.

TEST(CampaignTracing, ShardFlushesMatchAbsorbedAggregateAcrossResume)
{
    const LifetimeSimulator simulator(smallConfig());
    const auto factory = tightBudgetFactory();
    constexpr unsigned kTrials = 6;
    constexpr uint64_t kSeed = 99;
    const std::string checkpoint = tempPath("ckpt") + ".json";
    const std::string trace_base = tempPath("trace") + ".json";
    // Span wall-clock payloads differ run to run; keep them out so the
    // campaign stream can be compared against a straight run exactly.
    TracerConfig config;
    config.filter = kTraceAllKinds & ~traceKindBit(TraceKind::Span);

    // Reference: an uncampaigned traced run of the same trials.
    Tracer straight(config);
    {
        TrialRunOptions run;
        run.parallel.threads = 2;
        run.tracer = &straight;
        run.traceUnit = straight.registerUnit("unit-A");
        simulator.runTrials(kTrials, factory, kSeed, run);
    }
    const std::vector<TraceEvent> expected =
        withoutKind(straight.collect(), TraceKind::Heartbeat);

    CampaignFingerprint fingerprint;
    fingerprint.campaign = "test_tracing";
    fingerprint.seed = kSeed;
    fingerprint.trials = kTrials;
    fingerprint.shards = 2;

    Tracer aggregate(config);
    TrialRunOptions run;
    run.parallel.threads = 2;
    run.tracer = &aggregate;
    run.traceUnit = aggregate.registerUnit("unit-A");
    CampaignOptions options;
    options.checkpointPath = checkpoint;
    options.shards = 2;
    options.tracePath = trace_base;
    {
        CampaignRunner runner(fingerprint, options);
        const CampaignResult result = runner.runUnit(
            "unit-A", simulator, factory, kTrials, kSeed, run);
        EXPECT_EQ(result.shardsRun, 2u);
    }

    // The absorbed aggregate is the straight run plus heartbeats.
    const std::vector<TraceEvent> campaign_events = aggregate.collect();
    const std::vector<TraceEvent> trial_events =
        withoutKind(campaign_events, TraceKind::Heartbeat);
    ASSERT_EQ(trial_events.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(eventTuple(trial_events[i]), eventTuple(expected[i]))
            << "event " << i;
    unsigned starts = 0, commits = 0;
    for (const TraceEvent &e : campaign_events) {
        if (e.kind != TraceKind::Heartbeat)
            continue;
        starts += e.sub == kHeartbeatStart;
        commits += e.sub == kHeartbeatCommit;
    }
    EXPECT_EQ(starts, 2u);
    EXPECT_EQ(commits, 2u);

    // Each committed shard flushed a loadable trace file whose events
    // union to the aggregate.
    std::vector<TraceEvent> flushed;
    for (const unsigned shard : {0u, 1u}) {
        LoadedTrace loaded;
        std::string error;
        const std::string path = trace_base + ".unit-A.shard" +
                                 std::to_string(shard) + ".json";
        ASSERT_TRUE(loadChromeTraceFile(path, loaded, &error))
            << path << ": " << error;
        EXPECT_EQ(loaded.units, (std::vector<std::string>{"unit-A"}));
        for (const TraceEvent &e :
             withoutKind(loaded.events, TraceKind::Heartbeat))
            flushed.push_back(e);
    }
    std::sort(flushed.begin(), flushed.end(),
              [](const TraceEvent &lhs, const TraceEvent &rhs) {
                  return eventTuple(lhs) < eventTuple(rhs);
              });
    ASSERT_EQ(flushed.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(eventTuple(flushed[i]), eventTuple(expected[i]))
            << "flushed event " << i;

    // Resume: committed shards are not re-traced; the gap's provenance
    // is recorded as shard_resumed heartbeats instead.
    Tracer resumed(config);
    run.tracer = &resumed;
    run.traceUnit = resumed.registerUnit("unit-A");
    options.resume = true;
    CampaignRunner resumer(fingerprint, options);
    const CampaignResult result = resumer.runUnit(
        "unit-A", simulator, factory, kTrials, kSeed, run);
    EXPECT_EQ(result.shardsResumed, 2u);
    const std::vector<TraceEvent> resume_events = resumed.collect();
    ASSERT_EQ(resume_events.size(), 2u);
    for (const TraceEvent &e : resume_events) {
        EXPECT_EQ(e.kind, TraceKind::Heartbeat);
        EXPECT_EQ(e.sub, kHeartbeatResumed);
    }

    std::remove(checkpoint.c_str());
    for (const unsigned shard : {0u, 1u})
        std::remove((trace_base + ".unit-A.shard" +
                     std::to_string(shard) + ".json")
                        .c_str());
}

// ---------------------------------------------------------------------
// Flag surface (satellite): strict rejection, helpers, filters.

TEST(TraceFlags, FilterSpecsParse)
{
    EXPECT_EQ(parseTraceFilter("all"), kTraceAllKinds);
    EXPECT_EQ(parseTraceFilter(""), kTraceAllKinds);
    EXPECT_EQ(parseTraceFilter("fault,repair"),
              traceKindBit(TraceKind::FaultArrival) |
                  traceKindBit(TraceKind::RepairDecision));
    EXPECT_EQ(parseTraceFilter("bogus"), std::nullopt);
    EXPECT_EQ(parseTraceFilter("fault,bogus"), std::nullopt);
    EXPECT_EQ(parseTraceFilter(","), std::nullopt);
    EXPECT_EQ(traceFilterSpec(kTraceAllKinds), "all");
    EXPECT_EQ(traceFilterSpec(traceKindBit(TraceKind::Verdict) |
                              traceKindBit(TraceKind::FaultArrival)),
              "fault,verdict");
}

TEST(TraceFlags, TraceFlagBuildsTracerWithDefaults)
{
    {
        const char *argv[] = {"prog", "--trace"};
        const CliOptions options(2, const_cast<char **>(argv),
                                 bench::withTraceFlags({}));
        const bench::BenchTrace trace =
            bench::traceFlag(options, "fig12_due_rates");
        ASSERT_NE(trace.get(), nullptr);
        EXPECT_EQ(trace.path, "TRACE_fig12_due_rates.json");
        EXPECT_TRUE(trace.get()->accepts(TraceKind::Span));
    }
    {
        const char *argv[] = {"prog", "--trace=custom.json",
                              "--trace-filter=fault,verdict"};
        const CliOptions options(3, const_cast<char **>(argv),
                                 bench::withTraceFlags({}));
        const bench::BenchTrace trace =
            bench::traceFlag(options, "fig12_due_rates");
        ASSERT_NE(trace.get(), nullptr);
        EXPECT_EQ(trace.path, "custom.json");
        EXPECT_TRUE(trace.get()->accepts(TraceKind::FaultArrival));
        EXPECT_FALSE(trace.get()->accepts(TraceKind::RepairDecision));
    }
    {
        const char *argv[] = {"prog"};
        const CliOptions options(1, const_cast<char **>(argv),
                                 bench::withTraceFlags({}));
        EXPECT_EQ(bench::traceFlag(options, "x").get(), nullptr);
    }
}

TEST(TraceFlagDeathTest, UntracedBenchRejectsTraceFlags)
{
    // The campaign flag list must never drift to include the trace
    // flags: a bench taking only withCampaignFlags rejects --trace via
    // the strict parser.
    const std::vector<std::string> known =
        bench::withCampaignFlags({"trials"});
    for (const std::string &flag : known)
        EXPECT_NE(flag.substr(0, 5), "trace") << flag;

    const char *argv[] = {"prog", "--trace=x.json"};
    EXPECT_EXIT(CliOptions(2, const_cast<char **>(argv), known),
                ::testing::ExitedWithCode(1), "unknown option --trace");
    const char *argv2[] = {"prog", "--trace-filter=fault"};
    EXPECT_EXIT(CliOptions(2, const_cast<char **>(argv2), known),
                ::testing::ExitedWithCode(1),
                "unknown option --trace-filter");
}

TEST(TraceFlagDeathTest, RejectTraceFlagsIsFatalNotIgnored)
{
    // Even if the flags somehow reach a permissive parser, the guard on
    // non-traced benches dies loudly instead of warn-ignoring.
    const char *argv[] = {"prog", "--trace"};
    const CliOptions options(2, const_cast<char **>(argv),
                             {"trace", "trace-filter"});
    EXPECT_EXIT(bench::rejectTraceFlags(options, "fig15_performance"),
                ::testing::ExitedWithCode(1), "not supported here");
}

TEST(TraceFlagDeathTest, FilterWithoutTraceIsFatal)
{
    const char *argv[] = {"prog", "--trace-filter=fault"};
    const CliOptions options(2, const_cast<char **>(argv),
                             bench::withTraceFlags({}));
    EXPECT_EXIT(bench::traceFlag(options, "fig12_due_rates"),
                ::testing::ExitedWithCode(1),
                "--trace-filter requires --trace");
}

TEST(TraceFlagDeathTest, UnknownFilterKindIsFatal)
{
    const char *argv[] = {"prog", "--trace", "--trace-filter=bogus"};
    const CliOptions options(3, const_cast<char **>(argv),
                             bench::withTraceFlags({}));
    EXPECT_EXIT(bench::traceFlag(options, "fig12_due_rates"),
                ::testing::ExitedWithCode(1), "unknown event kind");
}

// ---------------------------------------------------------------------
// Overhead contract: the disabled path is under a nanosecond.

TEST(TracingOverhead, DisabledEmitIsUnderOneNanosecond)
{
#if !defined(__OPTIMIZE__)
    GTEST_SKIP() << "timing assertion needs an optimized build";
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    GTEST_SKIP() << "timing assertion is meaningless under sanitizers";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) \
    || __has_feature(memory_sanitizer)
    GTEST_SKIP() << "timing assertion is meaningless under sanitizers";
#endif
#endif
    // The exact pattern every instrumented engine uses: a nullable sink
    // tested per would-be event. volatile keeps the load + branch in
    // the loop, as in the real code where the pointer is runtime state.
    TraceSink *volatile sink_slot = nullptr;
    constexpr uint64_t kEvents = 1u << 27;
    uint64_t armed = 0;
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kEvents; ++i) {
        TraceSink *const sink = sink_slot;
        if (sink != nullptr) {
            sink->emit(TraceKind::FaultArrival, kFaultSampled, i);
            ++armed;
        }
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns_per_event =
        std::chrono::duration<double, std::nano>(elapsed).count() /
        static_cast<double>(kEvents);
    EXPECT_EQ(armed, 0u);
    EXPECT_LT(ns_per_event, 1.0)
        << "disabled tracing must cost < 1 ns/event";
}

TEST(TracingOverhead, SpanReadsNoClockWhenDisabled)
{
    // A TraceSpan over a null sink must not emit anywhere, and a
    // filtered sink records nothing.
    { const TraceSpan span(nullptr, TracePhase::Trial); }

    TracerConfig config;
    config.filter = traceKindBit(TraceKind::Verdict);  // Spans filtered.
    Tracer tracer(config);
    const uint16_t unit = tracer.registerUnit("span");
    {
        const TraceShardLease lease(&tracer);
        TraceSink sink(&tracer, lease.shard(), unit);
        sink.beginTrial(0);
        const TraceSpan span(&sink, TracePhase::Trial);
        EXPECT_EQ(sink.emit(TraceKind::Span, 0), 0u);
    }
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracingOverhead, SafeFileTokenSanitizes)
{
    EXPECT_EQ(traceSafeFileToken("1x-fit/RelaxFault-4way"),
              "1x-fit-RelaxFault-4way");
    EXPECT_EQ(traceSafeFileToken("a b\tc"), "a-b-c");
    EXPECT_EQ(traceSafeFileToken("plain_0.9"), "plain_0.9");
}

} // namespace
} // namespace relaxfault
