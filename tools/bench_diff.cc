/**
 * @file
 * Bench artifact regression gate: diff two `relaxfault.bench.v1` JSON
 * artifacts (or two directories of them) and fail on a perf regression.
 *
 *   bench_diff BASELINE.json CANDIDATE.json
 *   bench_diff baseline_dir/ candidate_dir/ --fail-ratio=2 --min-ns=1
 *   bench_diff old.json new.json --out=REPORT.md
 *
 * Rows are matched by their string-cell identity, and each shared
 * numeric column is judged by the suffix-matched direction table in
 * `telemetry/bench_compare.h`: latency/footprint columns must not grow
 * by the fail ratio, throughput columns must not shrink by it, and
 * scientific outputs (DUE rates, coverage) are reported but never gate
 * — their correctness is the deterministic tests' job. Exit status is
 * nonzero iff any comparison regressed, so the tool drops straight into
 * CI; the Markdown report (stdout, or `--out`) is the human half.
 *
 * Directory mode pairs files by name: a file present on only one side
 * is a note, not a failure — new benches must not fail the gate
 * retroactively.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/fs.h"
#include "common/log.h"
#include "telemetry/bench_compare.h"
#include "telemetry/json_reader.h"
#include "telemetry/run_record.h"

using namespace relaxfault;

namespace {

/** One side's artifacts: path + parsed JSON-lines records. */
struct Artifact
{
    std::string name;  ///< Pairing key (file name in directory mode).
    std::string path;
    std::vector<JsonParseResult> records;
};

Artifact
loadArtifact(const std::string &name, const std::string &path)
{
    Artifact artifact;
    artifact.name = name;
    artifact.path = path;
    std::string text;
    if (const IoResult io = readFile(path, text); !io)
        fatal("bench_diff: " + io.describe(path));
    for (const std::string &line : splitLines(text)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonParseResult parsed = parseJson(line);
        if (!parsed.ok)
            fatal("bench_diff: " + path + ": " + parsed.error);
        artifact.records.push_back(std::move(parsed));
    }
    if (artifact.records.empty())
        fatal("bench_diff: " + path + ": no JSON records");
    return artifact;
}

/** Expand a file-or-directory argument into named artifacts. */
std::vector<Artifact>
loadSide(const std::string &path)
{
    std::vector<Artifact> artifacts;
    if (std::filesystem::is_directory(path)) {
        std::vector<std::string> names;
        for (const auto &entry :
             std::filesystem::directory_iterator(path)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".json")
                names.push_back(entry.path().filename().string());
        }
        std::sort(names.begin(), names.end());
        for (const std::string &name : names)
            artifacts.push_back(loadArtifact(
                name, (std::filesystem::path(path) / name).string()));
        if (artifacts.empty())
            fatal("bench_diff: " + path + ": no .json artifacts");
    } else {
        artifacts.push_back(loadArtifact(
            std::filesystem::path(path).filename().string(), path));
    }
    return artifacts;
}

const JsonParseResult *
findRecord(const std::vector<JsonParseResult> &records,
           const std::string &bench)
{
    for (const JsonParseResult &record : records) {
        const JsonValue *name = record.value.find("bench");
        if (name != nullptr && name->isString() &&
            name->string() == bench)
            return &record;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options(argc, argv,
                             {"fail-ratio", "min-ns", "out", "version"});
    if (options.has("version")) {
        std::cout << toolVersionLine("bench_diff") << "\n";
        return 0;
    }
    if (options.positional().size() != 2)
        fatal("usage: bench_diff BASELINE CANDIDATE [--fail-ratio=2.0] "
              "[--min-ns=0] [--out=REPORT.md] [--version]  (each side a "
              "BENCH_*.json file or a directory of them)");
    BenchCompareOptions compare;
    compare.failRatio = options.getDouble("fail-ratio", 2.0);
    if (compare.failRatio <= 1.0)
        fatal("bench_diff: --fail-ratio must be > 1");
    compare.minNs = options.getDouble("min-ns", 0.0);

    const std::vector<Artifact> baselines =
        loadSide(options.positional()[0]);
    std::vector<Artifact> candidates =
        loadSide(options.positional()[1]);
    // Single file vs single file: the two names ARE the pair, whatever
    // they are called ("old.json new.json" must just work). Name-based
    // pairing is for directory mode.
    if (baselines.size() == 1 && candidates.size() == 1)
        candidates.front().name = baselines.front().name;

    std::vector<BenchCompareResult> results;
    std::vector<std::string> unpaired;
    for (const Artifact &baseline : baselines) {
        const auto match = std::find_if(
            candidates.begin(), candidates.end(),
            [&](const Artifact &candidate) {
                return candidate.name == baseline.name;
            });
        if (match == candidates.end()) {
            unpaired.push_back("baseline-only artifact: " +
                               baseline.name);
            continue;
        }
        // Pair records within the artifact by bench name, so multi-line
        // (JSON Lines) files diff line-for-line even when reordered.
        for (const JsonParseResult &base_record : baseline.records) {
            const JsonValue *name = base_record.value.find("bench");
            const std::string bench =
                name != nullptr && name->isString() ? name->string()
                                                    : "?";
            const JsonParseResult *cand_record =
                findRecord(match->records, bench);
            if (cand_record == nullptr) {
                unpaired.push_back("bench '" + bench + "' (" +
                                   baseline.name +
                                   ") missing from candidate");
                continue;
            }
            results.push_back(compareBenchRecords(
                base_record.value, cand_record->value, compare));
        }
    }
    for (const Artifact &candidate : candidates) {
        const bool paired = std::any_of(
            baselines.begin(), baselines.end(),
            [&](const Artifact &baseline) {
                return baseline.name == candidate.name;
            });
        if (!paired)
            unpaired.push_back("candidate-only artifact: " +
                               candidate.name + " (not gated)");
    }
    if (results.empty())
        fatal("bench_diff: no artifact pair matched between " +
              options.positional()[0] + " and " +
              options.positional()[1]);

    std::string report = renderBenchDiffMarkdown(results, compare);
    if (!unpaired.empty()) {
        report += "\n## Unpaired\n\n";
        for (const std::string &note : unpaired)
            report += "- " + note + "\n";
    }
    report += "\n_" + toolVersionLine("bench_diff") + "_\n";

    const std::string out_path = options.getString("out", "");
    if (!out_path.empty()) {
        if (const IoResult io = atomicWriteFile(out_path, report); !io)
            fatal("bench_diff: cannot write --out file: " +
                  io.describe(out_path));
        inform("wrote " + out_path);
    } else {
        std::cout << report;
    }

    bool regressed = false;
    for (const BenchCompareResult &result : results)
        regressed = regressed || result.regressed;
    if (regressed) {
        warn("bench_diff: regression(s) at fail-ratio " +
             std::to_string(compare.failRatio));
        return 1;
    }
    return 0;
}
