/**
 * @file
 * Live fleet viewer: attach to a `--stats-plane` file and watch the
 * workers run.
 *
 *   fleet_top STATS.plane                 # refreshing per-worker table
 *   fleet_top STATS.plane --once          # one frame, then exit
 *   fleet_top STATS.plane --once --json   # machine snapshot
 *                                         # (relaxfault.top.v1)
 *
 * The viewer is a pure observer: it maps the plane read-only and
 * samples the per-slot seqlock, so attaching (or hammering refreshes)
 * costs the campaign nothing. Highlighting mirrors the supervisor's
 * verdicts — a slot the parent marked `stalled` or `crashed` is flagged
 * — plus an observer-side staleness hint: a `running` slot whose last
 * publish is older than `--stale-ms` is suspect even before the
 * watchdog fires (the watchdog may be disabled, or its deadline long).
 * Quarantined shards are surfaced in the footer; the campaign's own
 * numbers are still the checkpoint log's job, not this viewer's.
 */

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/clock.h"
#include "common/log.h"
#include "common/table.h"
#include "telemetry/json_writer.h"
#include "telemetry/run_record.h"
#include "telemetry/stats_plane.h"

using namespace relaxfault;

namespace {

/** Snapshot of the whole plane at one observer instant. */
struct PlaneFrame
{
    std::string campaign;
    uint64_t ownerPid = 0;
    uint64_t startEpochMs = 0;
    uint64_t quarantinedShards = 0;
    uint64_t nowEpochMs = 0;
    std::vector<StatsSlotSample> slots;
    std::vector<bool> torn;  ///< readSlot exhausted its retry budget.
};

PlaneFrame
sample(const StatsPlane &plane)
{
    PlaneFrame frame;
    frame.campaign = plane.campaign();
    frame.ownerPid = plane.ownerPid();
    frame.startEpochMs = plane.startEpochMs();
    frame.quarantinedShards = plane.quarantinedShards();
    frame.nowEpochMs = runTimestampMs();
    frame.slots.resize(plane.slots());
    frame.torn.resize(plane.slots(), false);
    for (size_t slot = 0; slot < plane.slots(); ++slot)
        frame.torn[slot] = !plane.readSlot(slot, frame.slots[slot]);
    return frame;
}

/** Milliseconds since the slot's last seqlock publish (0 if never). */
uint64_t
publishAgeMs(const PlaneFrame &frame, const StatsSlotSample &slot)
{
    if (slot.updateEpochMs == 0 ||
        slot.updateEpochMs > frame.nowEpochMs)
        return 0;
    return frame.nowEpochMs - slot.updateEpochMs;
}

bool
terminalPhase(StatsPhase phase)
{
    return phase == StatsPhase::Done || phase == StatsPhase::Crashed;
}

std::string
renderTable(const PlaneFrame &frame, uint64_t stale_ms)
{
    std::ostringstream out;
    out << "campaign " << frame.campaign << "  owner-pid "
        << frame.ownerPid << "  up "
        << (frame.nowEpochMs > frame.startEpochMs
                ? (frame.nowEpochMs - frame.startEpochMs) / 1000
                : 0)
        << "s\n\n";
    TextTable table;
    table.setHeader({"slot", "pid", "phase", "shard", "started", "done",
                     "trials/s", "rss-MiB", "beat", "failpts", "age-ms",
                     ""});
    uint64_t total_started = 0, total_done = 0;
    double total_rate = 0.0;
    for (size_t i = 0; i < frame.slots.size(); ++i) {
        const StatsSlotSample &slot = frame.slots[i];
        const uint64_t age = publishAgeMs(frame, slot);
        std::string note;
        if (frame.torn[i])
            note = "<< TORN (writer died mid-publish?)";
        else if (slot.phase == StatsPhase::Stalled)
            note = "<< STALLED (watchdog verdict)";
        else if (slot.phase == StatsPhase::Crashed)
            note = "<< CRASHED";
        else if (slot.phase == StatsPhase::Running && stale_ms != 0 &&
                 age >= stale_ms)
            note = "?? stale publish";
        total_started += slot.trialsStarted;
        total_done += slot.trialsCompleted;
        if (!terminalPhase(slot.phase))
            total_rate += slot.trialsPerSec;
        table.addRow({TextTable::num(uint64_t{i}),
                      TextTable::num(slot.pid),
                      statsPhaseName(slot.phase),
                      TextTable::num(slot.shard),
                      TextTable::num(slot.trialsStarted),
                      TextTable::num(slot.trialsCompleted),
                      TextTable::num(slot.trialsPerSec, 2),
                      TextTable::num(static_cast<double>(slot.rssBytes) /
                                         (1024.0 * 1024.0),
                                     1),
                      TextTable::num(slot.heartbeatTick),
                      TextTable::num(slot.armedFailpoints),
                      TextTable::num(age), note});
    }
    table.print(out);
    out << "\ntotals: " << total_started << " started, " << total_done
        << " completed, " << TextTable::num(total_rate, 2)
        << " trials/s\n";
    if (frame.quarantinedShards != 0)
        out << "!! " << frame.quarantinedShards
            << " shard(s) QUARANTINED — campaign results are partial\n";
    return out.str();
}

void
writeJsonFrame(const PlaneFrame &frame, uint64_t stale_ms,
               std::ostream &os)
{
    JsonWriter json(os);
    json.beginObject();
    json.key("schema").value("relaxfault.top.v1");
    writeProvenance(json);
    json.key("campaign").value(frame.campaign);
    json.key("owner_pid").value(frame.ownerPid);
    json.key("start_epoch_ms").value(frame.startEpochMs);
    json.key("quarantined_shards").value(frame.quarantinedShards);
    json.key("slots").beginArray();
    for (size_t i = 0; i < frame.slots.size(); ++i) {
        const StatsSlotSample &slot = frame.slots[i];
        const uint64_t age = publishAgeMs(frame, slot);
        json.beginObject();
        json.key("slot").value(uint64_t{i});
        json.key("pid").value(slot.pid);
        json.key("phase").value(statsPhaseName(slot.phase));
        json.key("shard").value(slot.shard);
        json.key("trials_started").value(slot.trialsStarted);
        json.key("trials_completed").value(slot.trialsCompleted);
        json.key("trials_per_sec").value(slot.trialsPerSec);
        json.key("rss_bytes").value(slot.rssBytes);
        json.key("heartbeat_tick").value(slot.heartbeatTick);
        json.key("armed_failpoints").value(slot.armedFailpoints);
        json.key("update_epoch_ms").value(slot.updateEpochMs);
        json.key("publish_age_ms").value(age);
        json.key("torn").value(bool{frame.torn[i]});
        json.key("stale").value(slot.phase == StatsPhase::Running &&
                                stale_ms != 0 && age >= stale_ms);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    os << "\n";
}

bool
processAlive(uint64_t pid)
{
    if (pid == 0)
        return false;
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options(argc, argv,
                             {"interval-ms", "stale-ms", "once", "json",
                              "version"});
    if (options.has("version")) {
        std::cout << toolVersionLine("fleet_top") << "\n";
        return 0;
    }
    if (options.positional().size() != 1)
        fatal("usage: fleet_top STATS.plane [--interval-ms=500] "
              "[--stale-ms=2000] [--once] [--json] [--version]");
    const std::string path = options.positional().front();
    const auto interval_ms = static_cast<uint64_t>(
        options.getPositiveInt("interval-ms", 500));
    const auto stale_ms = static_cast<uint64_t>(
        options.getNonNegativeInt("stale-ms", 2000));
    const bool once = options.has("once");
    if (options.has("json") && !once)
        fatal("fleet_top: --json requires --once (one machine-readable "
              "frame; stream by re-running)");

    Clock &clock = Clock::steady();
    // The plane file appears (and its magic lands, release-ordered,
    // last) a beat after the bench starts; in watch mode, wait for it.
    std::unique_ptr<StatsPlane> plane;
    std::string error;
    for (;;) {
        plane = StatsPlane::attach(path, &error);
        if (plane != nullptr)
            break;
        if (once)
            fatal("fleet_top: " + path + ": " + error);
        warn("fleet_top: " + path + ": " + error + "; retrying");
        clock.sleepFor(std::chrono::milliseconds(interval_ms));
    }

    if (once) {
        const PlaneFrame frame = sample(*plane);
        if (options.has("json"))
            writeJsonFrame(frame, stale_ms, std::cout);
        else
            std::cout << renderTable(frame, stale_ms);
        return 0;
    }

    for (;;) {
        const PlaneFrame frame = sample(*plane);
        // Home + clear-to-end keeps a live terminal flicker-free;
        // harmless noise when redirected (use --once for capture).
        std::cout << "\x1b[H\x1b[J" << renderTable(frame, stale_ms)
                  << std::flush;
        bool all_terminal = !frame.slots.empty();
        for (const StatsSlotSample &slot : frame.slots)
            all_terminal = all_terminal && terminalPhase(slot.phase);
        if (all_terminal || !processAlive(frame.ownerPid)) {
            std::cout << "(campaign finished)\n";
            return 0;
        }
        clock.sleepFor(std::chrono::milliseconds(interval_ms));
    }
}
