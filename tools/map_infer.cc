/**
 * @file
 * map_infer — black-box recovery of a DRAM address-mapping's XOR masks.
 *
 * The same inference DRAMDig and Knock-Knock run against real hardware,
 * pointed at this project's own mapping strategies: given only an
 * opaque decode oracle (`--mapping=NAME`, treated strictly black-box —
 * only `decode` is probed) or an offline observation log
 * (`--observations=FILE`, e.g. distilled from a fault log of coalesced
 * addresses), recover the per-coordinate-bit XOR masks by Gaussian
 * elimination over GF(2), then verify them.
 *
 * In oracle mode the tool doubles as a differential test: the recovered
 * masks must match basis-probe ground truth exactly and reproduce
 * encode/decode through a rebuilt mapping, or the run exits nonzero.
 * A corrupted or non-linear observation log also exits nonzero with a
 * diagnostic — wrong masks are never emitted.
 *
 * Modes:
 *   map_infer --list
 *   map_infer --mapping=NAME [--geometry=G] [--seed=S] [--json=PATH]
 *   map_infer --mapping=NAME --emit-observations=FILE [--samples=N]
 *   map_infer --observations=FILE [--geometry=G] [--json=PATH]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.h"
#include "common/fs.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "dram/address_map.h"
#include "dram/map_infer.h"
#include "telemetry/json_writer.h"
#include "telemetry/run_record.h"

using namespace relaxfault;

namespace {

DramGeometry
geometryByName(const std::string &name)
{
    if (name == "ddr3")
        return DramGeometry::ddr3Dimm();
    if (name == "ddr4")
        return DramGeometry::ddr4Dimm();
    if (name == "lpddr4")
        return DramGeometry::lpddr4();
    if (name == "hbm")
        return DramGeometry::hbmStack();
    fatal("--geometry=" + name +
          " is not a geometry (expected ddr3 | ddr4 | lpddr4 | hbm)");
}

/** Field name and in-field bit of canonical coordinate bit @p i. */
std::string
coordBitLabel(const DramGeometry &geometry, unsigned i)
{
    struct Field
    {
        const char *name;
        unsigned bits;
    };
    const Field fields[] = {
        {"channel", geometry.channelBits()},
        {"rank", geometry.rankBits()},
        {"bank", geometry.bankBits()},
        {"row", geometry.rowBits()},
        {"col", geometry.colBlockBits()},
    };
    for (const Field &field : fields) {
        if (i < field.bits)
            return std::string(field.name) + "[" + std::to_string(i) +
                   "]";
        i -= field.bits;
    }
    return "?[" + std::to_string(i) + "]";
}

std::string
hexMask(uint64_t mask)
{
    std::ostringstream os;
    os << "0x" << std::hex << mask;
    return os.str();
}

void
printMasks(const DramGeometry &geometry, const MapInference &inference)
{
    TextTable table;
    table.setHeader({"coord bit", "line-address XOR mask"});
    for (unsigned i = 0; i < inference.masks.size(); ++i)
        table.addRow({coordBitLabel(geometry, i),
                      hexMask(inference.masks[i])});
    table.print(std::cout);
    if (inference.affineOffset != 0)
        std::cout << "affine offset (packed coord bits): "
                  << hexMask(inference.affineOffset) << "\n";
}

void
writeJson(const std::string &path, const std::string &source,
          const std::string &geometry_name, const DramGeometry &geometry,
          const MapInference &inference)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("schema").value("relaxfault.mapinfer.v1");
    writeProvenance(json);
    json.key("source").value(source);
    json.key("geometry").value(geometry_name);
    json.key("line_bits")
        .value(geometry.paBits() - geometry.offsetBits());
    json.key("probes").value(inference.probes);
    json.key("affine_offset").value(inference.affineOffset);
    json.key("masks").beginArray();
    for (unsigned i = 0; i < inference.masks.size(); ++i) {
        json.beginObject();
        json.key("bit").value(coordBitLabel(geometry, i));
        json.key("mask").value(inference.masks[i]);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.finish();
    os << "\n";
    if (const IoResult io = atomicWriteFile(path, os.str()); !io)
        fatal("cannot write --json output file: " + io.describe(path));
    inform("wrote " + path);
}

std::vector<MapObservation>
loadObservations(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open --observations file " + path);
    std::vector<MapObservation> observations;
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        MapObservation obs;
        std::string pa_text;
        if (!(fields >> pa_text >> obs.coord.channel >> obs.coord.rank >>
              obs.coord.bank >> obs.coord.row >> obs.coord.colBlock))
            fatal(path + ":" + std::to_string(line_no) +
                  ": expected 'pa channel rank bank row col'");
        try {
            obs.pa = std::stoull(pa_text, nullptr, 0);
        } catch (...) {
            fatal(path + ":" + std::to_string(line_no) +
                  ": bad address '" + pa_text + "'");
        }
        observations.push_back(obs);
    }
    return observations;
}

void
emitObservations(const std::string &path, const DramAddressMap &map,
                 unsigned samples, uint64_t seed)
{
    const DramGeometry &geometry = map.geometry();
    std::ostringstream os;
    os << "# map_infer observation log: pa channel rank bank row col\n"
       << "# scheme=" << map.name() << " samples=" << samples << "\n";
    Rng rng(seed);
    for (unsigned i = 0; i < samples; ++i) {
        const uint64_t pa =
            rng.uniformInt(geometry.nodeBytes() / geometry.lineBytes) *
            geometry.lineBytes;
        const LineCoord coord = map.decode(pa);
        os << hexMask(pa) << " " << coord.channel << " " << coord.rank
           << " " << coord.bank << " " << coord.row << " "
           << coord.colBlock << "\n";
    }
    if (const IoResult io = atomicWriteFile(path, os.str()); !io)
        fatal("cannot write --emit-observations file: " +
              io.describe(path));
    inform("wrote " + path + " (" + std::to_string(samples) +
           " observations of scheme " + map.name() + ")");
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options(argc, argv,
                             {"mapping", "geometry", "observations",
                              "emit-observations", "samples", "probes",
                              "seed", "json", "list", "version"});
    if (options.has("version")) {
        std::cout << toolVersionLine("map_infer") << "\n";
        return 0;
    }
    if (options.has("list")) {
        for (const std::string &name : addressMappingNames())
            std::cout << name << "\n";
        return 0;
    }

    const std::string geometry_name =
        options.getString("geometry", "ddr3");
    const DramGeometry geometry = geometryByName(geometry_name);
    const auto seed =
        static_cast<uint64_t>(options.getInt("seed", 20040235));
    const auto max_probes = static_cast<unsigned>(
        options.getPositiveInt("probes", 4096));
    const std::string json_path = options.getString("json", "");

    if (options.has("observations")) {
        if (options.has("mapping") || options.has("emit-observations"))
            fatal("--observations is exclusive with --mapping / "
                  "--emit-observations (the log is the only input)");
        const std::string path = options.getString("observations", "");
        const std::vector<MapObservation> observations =
            loadObservations(path);
        inform("loaded " + std::to_string(observations.size()) +
               " observations from " + path);
        const MapInference inference =
            inferFromObservations(observations, geometry);
        if (!inference.ok)
            fatal("inference failed: " + inference.error);
        printMasks(geometry, inference);
        std::cout << "recovered " << inference.masks.size()
                  << " masks from " << inference.probes
                  << " observations\n";
        if (!json_path.empty())
            writeJson(json_path, "observations:" + path, geometry_name,
                      geometry, inference);
        return 0;
    }

    const std::string mapping_name = options.getString("mapping", "");
    if (mapping_name.empty())
        fatal("one of --mapping=NAME, --observations=FILE, or --list "
              "is required (known schemes: " +
              addressMappingNamesHint() + ")");
    if (!isAddressMappingName(mapping_name))
        fatal("--mapping=" + mapping_name +
              " is not a known scheme (expected " +
              addressMappingNamesHint() + ")");
    const DramAddressMap map = makeAddressMap(mapping_name, geometry);

    if (options.has("emit-observations")) {
        const auto samples = static_cast<unsigned>(
            options.getPositiveInt("samples", 512));
        emitObservations(options.getString("emit-observations", ""), map,
                         samples, seed);
        return 0;
    }

    // Oracle mode: only decode() is probed — the mapping is black-box.
    const DecodeOracle oracle = [&map](uint64_t pa) {
        return map.decode(pa);
    };
    const MapInference inference =
        inferMapping(oracle, geometry, seed, max_probes);
    if (!inference.ok)
        fatal("inference failed: " + inference.error);
    printMasks(geometry, inference);
    std::cout << "recovered " << inference.masks.size() << " masks in "
              << inference.probes << " probes\n";

    // Differential verdict: basis-probe ground truth, then a rebuilt
    // mapping must reproduce encode/decode exactly.
    if (inference.masks != basisDecodeMasks(oracle, geometry) ||
        inference.affineOffset != 0)
        fatal("recovered masks do not match basis-probe ground truth "
              "for scheme " + mapping_name);
    const DramAddressMap rebuilt(
        mappingFromMasks("inferred:" + mapping_name, geometry,
                         inference.masks));
    Rng rng(seed ^ 0x5eedu);
    for (unsigned i = 0; i < 4096; ++i) {
        const uint64_t pa =
            rng.uniformInt(geometry.nodeBytes() / geometry.lineBytes) *
            geometry.lineBytes;
        const LineCoord coord = map.decode(pa);
        if (!(rebuilt.decode(pa) == coord) ||
            rebuilt.encode(coord) != pa || map.encode(coord) != pa)
            fatal("rebuilt mapping diverges from scheme " +
                  mapping_name + " at pa=" + hexMask(pa));
    }
    std::cout << "recovered masks match ground truth for scheme "
              << mapping_name << " (" << geometry_name << ")\n";
    if (!json_path.empty())
        writeJson(json_path, "oracle:" + mapping_name, geometry_name,
                  geometry, inference);
    return 0;
}
