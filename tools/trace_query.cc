/**
 * @file
 * Trace forensics CLI: query exported causal traces.
 *
 * Loads one or more `relaxfault.trace.v1` files (the aggregate
 * `--trace` artifact and/or per-shard campaign flushes; units are
 * merged by label) and answers the questions a failure post-mortem
 * asks:
 *
 *   trace_query TRACE.json                      # per-unit summary
 *   trace_query TRACE.json --trial=7            # trial 7's causal tree
 *   trace_query TRACE.json --trial=7 --unit=1x-fit/RelaxFault-4way
 *   trace_query TRACE.json --degraded --last=5  # what preceded the
 *                                               # last 5 degradations
 *   trace_query TRACE.json --phases             # span latency histogram
 *
 * The timeline view walks the parent links recorded at emission time,
 * so a fail-stop or DUE verdict prints underneath the exact fault
 * arrival and failed repair decision that caused it.
 */

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/cli.h"
#include "common/log.h"
#include "common/table.h"
#include "faults/fault.h"
#include "telemetry/metrics.h"
#include "telemetry/run_record.h"
#include "tracing/trace_event.h"
#include "tracing/trace_export.h"

using namespace relaxfault;

namespace {

/** All loaded files folded together, unit ids remapped by label. */
struct MergedTrace
{
    std::vector<std::string> units;
    std::vector<TraceEvent> events;
    uint64_t droppedEvents = 0;

    uint16_t unitId(const std::string &label)
    {
        for (size_t i = 0; i < units.size(); ++i) {
            if (units[i] == label)
                return static_cast<uint16_t>(i);
        }
        units.push_back(label);
        return static_cast<uint16_t>(units.size() - 1);
    }
};

MergedTrace
loadAll(const std::vector<std::string> &paths)
{
    MergedTrace merged;
    for (const std::string &path : paths) {
        LoadedTrace loaded;
        std::string error;
        if (!loadChromeTraceFile(path, loaded, &error))
            fatal("trace_query: " + path + ": " + error);
        std::vector<uint16_t> remap(loaded.units.size());
        for (size_t u = 0; u < loaded.units.size(); ++u)
            remap[u] = merged.unitId(loaded.units[u]);
        for (TraceEvent event : loaded.events) {
            event.unit = event.unit < remap.size() ? remap[event.unit]
                                                   : merged.unitId("?");
            merged.events.push_back(event);
        }
        merged.droppedEvents += loaded.droppedEvents;
    }
    std::sort(merged.events.begin(), merged.events.end(),
              [](const TraceEvent &lhs, const TraceEvent &rhs) {
                  return std::tie(lhs.unit, lhs.trial, lhs.id) <
                         std::tie(rhs.unit, rhs.trial, rhs.id);
              });
    return merged;
}

std::string
hours(double t)
{
    std::ostringstream out;
    out.precision(3);
    out << std::fixed << t << "h";
    return out.str();
}

/** Kind-specific payload decode (conventions in trace_event.h). */
std::string
describe(const TraceEvent &e)
{
    std::ostringstream out;
    out << traceEventName(e.kind, e.sub);
    switch (e.kind) {
      case TraceKind::FaultArrival:
        out << " mode=" << faultModeName(static_cast<FaultMode>(e.a))
            << " perm="
            << (e.b == 0 ? "transient" : e.b == 1 ? "hard" : "intermittent")
            << " dimm=" << ((e.c >> 8) & 0xff)
            << " device=" << (e.c & 0xff) << " parts=" << (e.c >> 16);
        break;
      case TraceKind::RepairDecision:
        out << " mech="
            << traceMechanismName(
                   static_cast<TraceMechanismId>(e.c >> 32))
            << " lines_delta=" << (e.c & 0xffffffffu)
            << " used_lines=" << e.a << " max_ways=" << e.b;
        break;
      case TraceKind::ScrubHit:
        out << " bank=" << (e.a >> 48)
            << " row=" << ((e.a >> 16) & 0xffffffffu)
            << " col=" << (e.a & 0xffffu) << " device_mask=0x" << std::hex
            << e.b << std::dec << " dimm=" << e.c;
        break;
      case TraceKind::BudgetExhausted:
        out << " used_lines=" << e.a << " max_ways=" << e.b;
        break;
      case TraceKind::Degradation:
        out << " absorbed=" << (e.a != 0 ? "yes" : "no");
        break;
      case TraceKind::Verdict:
        if (e.sub == kVerdictDue)
            out << " dimms=" << e.b;
        else
            out << " expectation="
                << static_cast<double>(e.a) / 1e6;
        break;
      case TraceKind::Replacement:
        out << " dimm=" << e.a;
        break;
      case TraceKind::Span:
        out << " wall_us=" << e.a;
        break;
      case TraceKind::Heartbeat:
        out << " first_trial=" << e.trial << " trials=" << e.a
            << " shard=" << e.b;
        if (e.sub != kHeartbeatStart)
            out << " duration_ms=" << e.c;
        break;
    }
    return out.str();
}

std::string
line(const TraceEvent &e, unsigned depth)
{
    std::ostringstream out;
    out << "  [" << hours(e.timeHours) << "]";
    if (e.node != 0 || e.kind != TraceKind::Heartbeat)
        out << " node=" << e.node;
    out << "  " << std::string(2 * depth, ' ') << describe(e);
    return out.str();
}

void
printSummary(const MergedTrace &merged)
{
    struct Row
    {
        std::set<uint64_t> trials;
        uint64_t events = 0, faults = 0, repaired = 0, failed = 0;
        uint64_t degrades = 0, dues = 0, sdcs = 0;
    };
    std::map<uint16_t, Row> rows;
    for (const TraceEvent &e : merged.events) {
        Row &row = rows[e.unit];
        ++row.events;
        if (e.kind != TraceKind::Heartbeat)
            row.trials.insert(e.trial);
        row.faults += e.kind == TraceKind::FaultArrival;
        row.repaired +=
            e.kind == TraceKind::RepairDecision && e.sub == kRepairOk;
        row.failed +=
            e.kind == TraceKind::RepairDecision && e.sub == kRepairFailed;
        row.degrades += e.kind == TraceKind::Degradation;
        row.dues += e.kind == TraceKind::Verdict && e.sub == kVerdictDue;
        row.sdcs += e.kind == TraceKind::Verdict && e.sub == kVerdictSdc;
    }
    TextTable table;
    table.setHeader({"unit", "events", "trials", "faults", "repaired",
                     "repair-failed", "degrades", "DUEs", "SDCs"});
    for (const auto &[unit, row] : rows) {
        table.addRow({unit < merged.units.size() ? merged.units[unit]
                                                 : "?",
                      TextTable::num(row.events),
                      TextTable::num(uint64_t{row.trials.size()}),
                      TextTable::num(row.faults),
                      TextTable::num(row.repaired),
                      TextTable::num(row.failed),
                      TextTable::num(row.degrades),
                      TextTable::num(row.dues),
                      TextTable::num(row.sdcs)});
    }
    table.print(std::cout);
    std::cout << merged.events.size() << " events, "
              << merged.droppedEvents
              << " dropped at export (ring overwrite)\n";
}

/** Indices of one (unit, trial)'s events, already id-sorted. */
std::vector<size_t>
trialEvents(const MergedTrace &merged, uint16_t unit, uint64_t trial)
{
    std::vector<size_t> indices;
    for (size_t i = 0; i < merged.events.size(); ++i) {
        const TraceEvent &e = merged.events[i];
        if (e.unit == unit && e.trial == trial &&
            e.kind != TraceKind::Heartbeat)
            indices.push_back(i);
    }
    return indices;
}

/** DFS the causal tree of one trial in emission order. */
void
printTimeline(const MergedTrace &merged, uint16_t unit, uint64_t trial)
{
    const std::vector<size_t> indices = trialEvents(merged, unit, trial);
    std::map<uint64_t, std::vector<size_t>> children;
    std::set<uint64_t> ids;
    for (const size_t i : indices)
        ids.insert(merged.events[i].id);
    for (const size_t i : indices) {
        const TraceEvent &e = merged.events[i];
        // An unknown parent (filtered out at record time) roots the
        // event rather than hiding it.
        children[ids.count(e.parent) ? e.parent : 0].push_back(i);
    }
    std::cout << "unit "
              << (unit < merged.units.size() ? merged.units[unit] : "?")
              << ", trial " << trial << ": " << indices.size()
              << " events\n";
    struct Frame
    {
        size_t index;
        unsigned depth;
    };
    std::vector<Frame> stack;
    const auto push_children = [&](uint64_t id, unsigned depth) {
        const auto it = children.find(id);
        if (it == children.end())
            return;
        for (auto rit = it->second.rbegin(); rit != it->second.rend();
             ++rit)
            stack.push_back({*rit, depth});
    };
    push_children(0, 0);
    while (!stack.empty()) {
        const Frame frame = stack.back();
        stack.pop_back();
        const TraceEvent &e = merged.events[frame.index];
        std::cout << line(e, frame.depth) << "\n";
        push_children(e.id, frame.depth + 1);
    }
}

/** Root-to-event causal chain (the "what preceded it" view). */
void
printAncestry(const MergedTrace &merged,
              const std::map<uint64_t, size_t> &by_id, size_t index)
{
    std::vector<size_t> chain;
    size_t cursor = index;
    for (;;) {
        chain.push_back(cursor);
        const auto parent = by_id.find(merged.events[cursor].parent);
        if (merged.events[cursor].parent == 0 || parent == by_id.end())
            break;
        cursor = parent->second;
    }
    for (size_t depth = chain.size(); depth-- > 0;)
        std::cout << line(merged.events[chain[depth]],
                          static_cast<unsigned>(chain.size() - 1 - depth))
                  << "\n";
}

void
printDegraded(const MergedTrace &merged, uint64_t last)
{
    // Group degradation events per (unit, trial), keeping global order.
    std::vector<std::pair<std::pair<uint16_t, uint64_t>,
                          std::vector<size_t>>> groups;
    for (size_t i = 0; i < merged.events.size(); ++i) {
        const TraceEvent &e = merged.events[i];
        if (e.kind != TraceKind::Degradation)
            continue;
        const std::pair<uint16_t, uint64_t> key{e.unit, e.trial};
        if (groups.empty() || groups.back().first != key)
            groups.push_back({key, {}});
        groups.back().second.push_back(i);
    }
    std::cout << groups.size() << " (unit, trial) pair(s) degraded\n";
    const size_t first =
        last != 0 && groups.size() > last ? groups.size() - last : 0;
    for (size_t g = first; g < groups.size(); ++g) {
        const auto &[key, events] = groups[g];
        const auto &[unit, trial] = key;
        std::cout << "\nunit "
                  << (unit < merged.units.size() ? merged.units[unit]
                                                 : "?")
                  << ", trial " << trial << ": " << events.size()
                  << " degradation(s)\n";
        std::map<uint64_t, size_t> by_id;
        for (const size_t i : trialEvents(merged, unit, trial))
            by_id[merged.events[i].id] = i;
        for (const size_t i : events)
            printAncestry(merged, by_id, i);
    }
}

void
printPhases(const MergedTrace &merged)
{
    std::map<uint8_t, Log2HistogramSnapshot> phases;
    for (const TraceEvent &e : merged.events) {
        if (e.kind != TraceKind::Span)
            continue;
        Log2HistogramSnapshot &snapshot = phases[e.sub];
        ++snapshot.buckets[Log2Histogram::bucketOf(e.a)];
        ++snapshot.count;
        snapshot.sum += e.a;
    }
    TextTable table;
    table.setHeader({"phase", "count", "mean-us", "p50-us<=", "p90-us<=",
                     "p99-us<="});
    for (const auto &[sub, snapshot] : phases) {
        table.addRow({tracePhaseName(static_cast<TracePhase>(sub)),
                      TextTable::num(snapshot.count),
                      TextTable::num(snapshot.mean(), 1),
                      TextTable::num(snapshot.quantileUpperBound(0.5)),
                      TextTable::num(snapshot.quantileUpperBound(0.9)),
                      TextTable::num(snapshot.quantileUpperBound(0.99))});
    }
    table.print(std::cout);
    if (phases.empty())
        std::cout << "(no span events; was the trace filtered?)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options(argc, argv,
                             {"summary", "trial", "unit", "degraded",
                              "last", "phases", "version"});
    if (options.has("version")) {
        std::cout << toolVersionLine("trace_query") << "\n";
        return 0;
    }
    if (options.positional().empty())
        fatal("usage: trace_query TRACE.json [TRACE.json...] [--summary] "
              "[--trial=N [--unit=LABEL]] [--degraded [--last=K]] "
              "[--phases]");
    const MergedTrace merged = loadAll(options.positional());

    bool queried = false;
    if (options.has("trial")) {
        queried = true;
        const auto trial = static_cast<uint64_t>(
            options.getNonNegativeInt("trial", 0));
        if (options.has("unit")) {
            const std::string label = options.getString("unit", "");
            uint16_t unit = 0;
            bool found = false;
            for (size_t u = 0; u < merged.units.size(); ++u) {
                if (merged.units[u] == label) {
                    unit = static_cast<uint16_t>(u);
                    found = true;
                }
            }
            if (!found) {
                std::string known;
                for (const std::string &name : merged.units)
                    known += "\n  " + name;
                fatal("--unit=" + label +
                      " is not in this trace; units:" + known);
            }
            printTimeline(merged, unit, trial);
        } else {
            // No unit given: print the trial in every unit that has it.
            std::set<uint16_t> units;
            for (const TraceEvent &e : merged.events) {
                if (e.trial == trial && e.kind != TraceKind::Heartbeat)
                    units.insert(e.unit);
            }
            if (units.empty())
                std::cout << "trial " << trial
                          << " has no events in this trace\n";
            for (const uint16_t unit : units)
                printTimeline(merged, unit, trial);
        }
    }
    if (options.has("degraded")) {
        queried = true;
        printDegraded(merged, static_cast<uint64_t>(
                                  options.getNonNegativeInt("last", 0)));
    }
    if (options.has("phases")) {
        queried = true;
        printPhases(merged);
    }
    if (options.has("summary") || !queried)
        printSummary(merged);
    return 0;
}
